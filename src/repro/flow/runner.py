"""Walk the experiment DAG: schedule, execute, persist, resume.

The runner turns a :class:`~repro.flow.graph.TaskGraph` into work:

* **ready-set scheduling** — tasks whose dependencies are all done are
  fanned out over a process pool (the same fork-preferring context as
  :mod:`repro.parallel.sweep`); everything else waits.  ``jobs=1`` runs
  serially in-process, which also lifts the picklability requirement —
  handy for tests.
* **incremental re-run** — before executing a task the runner computes
  its :func:`~repro.flow.state.task_key` (declaration × code version ×
  upstream output digests) and compares it to the persisted record; a
  match whose result pickle still loads is a cache hit and costs nothing.
* **fault isolation** — a failed task marks its transitive dependents
  ``skipped`` and the rest of the DAG keeps running; the invocation
  summary lists every failed/skipped stage and the caller exits nonzero.
* **crash safety** — ``flow-state.json`` is rewritten atomically after
  every task transition, so an interrupted invocation resumes from the
  last completed task, not from zero.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.flow.graph import FlowError, TaskGraph
from repro.flow.state import (
    FlowState,
    RunDirectory,
    flow_root,
    output_digest,
    run_key_for,
    task_key,
)
from repro.parallel.sweep import effective_jobs, pool_context

__all__ = ["FlowResult", "FlowRunner"]


def _execute_task(name, fn, kwargs, dep_results):
    """Worker-side shim: run one task, never raise across the pool.

    Returns ``(name, status, value, wall, error, resources)`` where
    ``resources`` is the schema-v2 accounting block measured *inside* the
    executing process: getrusage CPU user/system deltas, peak-RSS growth,
    the worker id, and the wall-clock start stamp (the parent turns the
    start stamp into ready→start queue wait).
    """
    import traceback

    from repro.parallel.rusage import snapshot, usage_delta, worker_id

    started_unix = time.time()
    before = snapshot()
    t0 = time.monotonic()
    try:
        value = fn(dep_results, **kwargs)
        status, error = "ok", ""
    except BaseException:
        value, status, error = None, "err", traceback.format_exc()
    wall = time.monotonic() - t0
    resources = usage_delta(before, snapshot())
    resources["worker"] = worker_id()
    resources["started_unix"] = started_unix
    return name, status, value, wall, error, resources


@dataclass
class FlowResult:
    """What one runner invocation did, for callers and ``flow-state.json``."""

    order: List[str]
    executed: List[str] = field(default_factory=list)
    cached: List[str] = field(default_factory=list)
    failed: Dict[str, str] = field(default_factory=dict)
    skipped: Dict[str, str] = field(default_factory=dict)
    results: Dict[str, Any] = field(default_factory=dict)
    #: tasks whose execution wall exceeded their declared budget_s,
    #: mapped to the overrun in seconds (reported, never fatal).
    over_budget: Dict[str, float] = field(default_factory=dict)
    wall_s: float = 0.0
    state_path: str = ""

    @property
    def ok(self) -> bool:
        return not self.failed and not self.skipped

    def summary_lines(self) -> List[str]:
        """Human-readable invocation summary (printed after every run)."""
        lines = [
            f"flow: {len(self.order)} tasks — {len(self.executed)} executed, "
            f"{len(self.cached)} cached, {len(self.failed)} failed, "
            f"{len(self.skipped)} skipped in {self.wall_s:.1f}s"
        ]
        for name, error in self.failed.items():
            reason = error.strip().splitlines()[-1] if error.strip() else "failed"
            lines.append(f"  FAILED  {name}: {reason}")
        for name, reason in self.skipped.items():
            lines.append(f"  skipped {name}: {reason}")
        for name, over in self.over_budget.items():
            lines.append(f"  BUDGET  {name}: over wall budget by {over:.1f}s")
        return lines


class FlowRunner:
    """Execute a task graph with resumable per-task state."""

    def __init__(
        self,
        graph: TaskGraph,
        mode: str = "full",
        state_root=None,
        jobs: Optional[int] = None,
        echo: Optional[Callable[[str], None]] = print,
    ):
        graph.validate()
        self.graph = graph
        self.mode = mode
        self.jobs = jobs
        self.echo = echo or (lambda line: None)
        self.root = flow_root() if state_root is None else Path(state_root)
        self.run_key = run_key_for(graph.tasks, mode)
        self.run_dir = RunDirectory(self.root, self.run_key)

    # -- planning ---------------------------------------------------------

    def _load_state(self, force: bool) -> FlowState:
        state = None if force else FlowState.load(self.run_dir.state_path)
        if state is None or state.run_key != self.run_key:
            state = FlowState(run_key=self.run_key, mode=self.mode)
        return state

    def _select(self, only: Optional[Sequence[str]]) -> List[str]:
        if only:
            return self.graph.closure(list(only))
        return self.graph.topological_order()

    def plan(self, only: Optional[Sequence[str]] = None, force: bool = False) -> List[dict]:
        """Dry-run classification: what would execute, what would resolve
        from cache.  A task downstream of anything that would execute is
        itself ``run`` (its input digests are unknowable until then)."""
        state = self._load_state(force)
        order = self._select(only)
        actions: List[dict] = []
        dep_digests: Dict[str, str] = {}
        would_run: set = set()
        for name in order:
            task = self.graph[name]
            action = "run"
            if not any(dep in would_run for dep in task.deps):
                record = state.tasks.get(name)
                key = task_key(task, dep_digests)
                if (
                    record is not None
                    and record.status == "done"
                    and record.key == key
                    and self.run_dir.result_path(name).exists()
                ):
                    action = "cached"
                    dep_digests[name] = record.digest
            if action == "run":
                would_run.add(name)
            actions.append({"task": name, "kind": task.kind, "action": action,
                            "deps": list(task.deps)})
        return actions

    # -- execution --------------------------------------------------------

    def run(
        self,
        only: Optional[Sequence[str]] = None,
        force: bool = False,
    ) -> FlowResult:
        """Run the (sub)graph; returns a :class:`FlowResult`.

        Never raises for task failures — those are recorded, their
        dependents skipped, and the summary reflects them; the caller
        decides the exit code.
        """
        t0 = time.monotonic()
        state = self._load_state(force)
        order = self._select(only)
        result = FlowResult(order=order, state_path=str(self.run_dir.state_path))
        total = len(order)

        state.last_run = {"started": time.time(), "mode": self.mode, "selected": total}
        self._save(state, result)

        digests: Dict[str, str] = {}  #: output digests of completed tasks
        completed: set = set()
        dead: Dict[str, str] = {}  #: failed/skipped name -> reason
        pending = list(order)
        running: Dict[Any, str] = {}
        #: wall-clock stamp of the moment each task's last dependency
        #: completed — the start of its queue wait.
        ready_at: Dict[str, float] = {}
        n_jobs = min(effective_jobs(self.jobs), max(1, total))
        state.last_run["jobs"] = n_jobs
        pool = (
            ProcessPoolExecutor(max_workers=n_jobs, mp_context=pool_context())
            if n_jobs > 1
            else None
        )
        step = 0

        def launch_ready():
            nonlocal step
            for name in list(pending):
                task = self.graph[name]
                if any(dep in dead for dep in task.deps):
                    pending.remove(name)
                    root_cause = next(dep for dep in task.deps if dep in dead)
                    reason = f"upstream {root_cause!r} did not complete"
                    dead[name] = reason
                    record = state.record(name)
                    record.status, record.error, record.kind = "skipped", reason, task.kind
                    record.cached = False
                    record.deps = list(task.deps)
                    record.reset_resources()
                    result.skipped[name] = reason
                    step += 1
                    self.echo(f"[{step:>3}/{total}] {name:<22} skipped ({reason})")
                    self._save(state, result)
                    continue
                if not all(dep in completed for dep in task.deps):
                    continue
                pending.remove(name)
                ready_at.setdefault(name, time.time())
                key = task_key(task, digests)
                record = state.record(name)
                record.kind = task.kind
                record.deps = list(task.deps)
                record.budget_s = float(task.budget_s or 0.0)
                if (
                    not force
                    and record.status == "done"
                    and record.key == key
                ):
                    ok, value = self.run_dir.load_result(name)
                    if ok:
                        # Cache-hit provenance: the resource fields keep
                        # describing the execution that produced the value;
                        # only the hit bookkeeping changes.
                        record.cached = True
                        record.source = "cache"
                        record.hit_count += 1
                        completed.add(name)
                        digests[name] = record.digest
                        result.cached.append(name)
                        result.results[name] = value
                        step += 1
                        self.echo(f"[{step:>3}/{total}] {name:<22} cached")
                        continue
                dep_results = {dep: result.results[dep] for dep in task.deps}
                record.status, record.key, record.cached = "running", key, False
                # No partial accounting may survive a crash mid-task: zero
                # everything now, fill it in atomically at completion.
                record.reset_resources()
                record.started_unix = time.time()  # submit stamp until the worker reports
                self._save(state, result)
                if pool is None:
                    payload = _execute_task(name, task.fn, task.call_kwargs(), dep_results)
                    finish(payload)
                else:
                    future = pool.submit(
                        _execute_task, name, task.fn, task.call_kwargs(), dep_results
                    )
                    running[future] = name

        def finish(payload):
            nonlocal step
            name, status, value, wall, error, resources = payload
            task = self.graph[name]
            record = state.record(name)
            record.wall_s = wall
            record.cpu_user_s = resources["cpu_user_s"]
            record.cpu_sys_s = resources["cpu_sys_s"]
            record.peak_rss_kb = resources["peak_rss_kb"]
            record.worker = resources["worker"]
            record.started_unix = resources["started_unix"]
            record.finished_unix = record.started_unix + wall
            record.queue_wait_s = max(
                0.0, record.started_unix - ready_at.get(name, record.started_unix)
            )
            record.source = "executed"
            record.hit_count = 0
            step += 1
            if status == "ok":
                self.run_dir.store_result(name, value)
                record.status, record.error = "done", ""
                record.digest = output_digest(value)
                digests[name] = record.digest
                completed.add(name)
                result.executed.append(name)
                result.results[name] = value
                note = ""
                if task.budget_s is not None and wall > task.budget_s:
                    record.over_budget = True
                    over = wall - task.budget_s
                    result.over_budget[name] = over
                    note = f"  OVER BUDGET ({task.budget_s:.0f}s +{over:.1f}s)"
                self.echo(f"[{step:>3}/{total}] {name:<22} done    {wall:6.1f}s{note}")
            else:
                record.status, record.error = "failed", error
                dead[name] = "failed"
                result.failed[name] = error
                last = error.strip().splitlines()[-1] if error.strip() else "failed"
                self.echo(f"[{step:>3}/{total}] {name:<22} FAILED  {wall:6.1f}s  {last}")
            self._save(state, result)

        try:
            launch_ready()
            while running:
                finished, _ = wait(list(running), return_when=FIRST_COMPLETED)
                for future in finished:
                    running.pop(future)
                    finish(future.result())
                launch_ready()
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

        result.wall_s = time.monotonic() - t0
        state.last_run.update(
            {
                "finished": time.time(),
                "wall_s": round(result.wall_s, 3),
                "executed": len(result.executed),
                "cached": len(result.cached),
                "failed": len(result.failed),
                "skipped": len(result.skipped),
                "over_budget": len(result.over_budget),
                "ok": result.ok,
            }
        )
        self._save(state, result)
        return result

    def _save(self, state: FlowState, result: FlowResult) -> None:
        # Keep the running counts current so a crash mid-run still leaves
        # an honest flow-state.json behind.
        state.last_run.update(
            {
                "executed": len(result.executed),
                "cached": len(result.cached),
                "failed": len(result.failed),
                "skipped": len(result.skipped),
            }
        )
        state.save(self.run_dir.state_path)
        # Mirror at the state root so CI can upload a stable path without
        # knowing the run key.
        try:
            state.save(Path(self.root) / "flow-state.json")
        except OSError:
            pass

    def load_result(self, name: str):
        """``(ok, value)`` for a previously completed task of this run."""
        if name not in self.graph:
            raise FlowError(f"unknown task {name!r}")
        return self.run_dir.load_result(name)
