"""``python -m repro flow`` — run the experiment DAG from the shell.

Subcommands::

    repro flow run [--mode full|reduced] [--only TASK ...] [--resume]
                   [--force] [--dry-run] [--jobs N] [--no-cache]
                   [--state-dir DIR] [--cache-dir DIR] [--assert-cached]
                   [--print-report] [--report-out F] [--bench-out F]
                   [--dashboard-out F]
    repro flow list [--mode ...]       # print the DAG (topological order)
    repro flow status [--state-dir] [--json]
    repro flow report [--state-dir] [--json] [--out FILE]
    repro flow dashboard [--state-dir] [--output FILE]
    repro flow diff A B [--json] [--assert-no-changes]

Resume is the default: a re-invocation with unchanged code and
configuration lands in the same run directory and only re-runs tasks
whose inputs changed (``--resume`` exists to state that intent
explicitly; ``--force`` recomputes everything).  ``--assert-cached``
makes a run fail unless *every* selected task resolved from cache — the
CI proof that resume/incremental-re-run actually works.

The observability trio reads ``flow-state.json`` (live dir or archived
artifact): ``report`` prints the critical-path/resource analysis
(:mod:`repro.obs.flowreport`), ``dashboard`` writes the self-contained
Gantt HTML (:mod:`repro.obs.flowdash`), and ``diff`` compares two runs
(:mod:`repro.flow.diff`) — ``--assert-no-changes`` turns a clean replay
into a CI gate (zero recomputed tasks, zero digest changes).

Exit codes: 0 success, 1 task failure (the rest of the DAG still ran and
the summary names every failed stage), 2 invalid graph/selection
(unknown task, bad mode), 3 ``--assert-cached`` violated, 4
``flow diff --assert-no-changes`` violated.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.flow.graph import FlowError
from repro.flow.runner import FlowRunner
from repro.flow.state import FlowState, flow_root
from repro.flow.tasks import MODES, build_graph
from repro.parallel.sweep import effective_jobs

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro flow",
        description="DAG-driven experiment orchestration with resumable state.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the DAG (resumes by default)")
    run.add_argument("--mode", choices=MODES, default="full",
                     help="full = flat-script parameters; reduced = short "
                          "windows + trimmed grids (what CI runs)")
    run.add_argument("--only", nargs="+", default=None, metavar="TASK",
                     help="run only these tasks plus their transitive dependencies")
    run.add_argument("--resume", action="store_true",
                     help="resume from persisted state (this is the default; "
                          "the flag documents intent)")
    run.add_argument("--force", action="store_true",
                     help="ignore persisted state and recompute every task")
    run.add_argument("--dry-run", action="store_true",
                     help="print what would run vs resolve from cache, then exit")
    run.add_argument("--jobs", type=int, default=0,
                     help="task-level worker processes (0 = all CPUs, 1 = serial; "
                          "serial runs give each sweep all CPUs instead)")
    run.add_argument("--no-cache", action="store_true",
                     help="disable the sweep-point result cache inside experiments")
    run.add_argument("--state-dir", default=None,
                     help="flow state root (default: $REPRO_FLOW_DIR or <cache>/flow)")
    run.add_argument("--cache-dir", default=None,
                     help="sweep result-cache directory (sets REPRO_CACHE_DIR)")
    run.add_argument("--assert-cached", action="store_true",
                     help="exit 3 unless every selected task resolved from cache")
    run.add_argument("--print-report", action="store_true",
                     help="print the aggregated experiment report after the run")
    run.add_argument("--report-out", default=None, metavar="FILE",
                     help="write the aggregated report text to FILE")
    run.add_argument("--bench-out", default=None, metavar="FILE",
                     help="write the bench report JSON to FILE")
    run.add_argument("--dashboard-out", default=None, metavar="FILE",
                     help="write the dashboard HTML to FILE")

    lst = sub.add_parser("list", help="print the DAG in topological order")
    lst.add_argument("--mode", choices=MODES, default="full")

    status = sub.add_parser("status", help="summarize the latest flow-state.json")
    status.add_argument("--state-dir", default=None)
    status.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the full state document (per-task status, "
                             "keys, walls, resource accounting) as JSON")

    report = sub.add_parser(
        "report", help="critical-path / resource analysis of a flow run"
    )
    report.add_argument("--state-dir", default=None,
                        help="state file, run directory, or state root "
                             "(default: the configured flow root)")
    report.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the analysis as JSON instead of text")
    report.add_argument("--out", default=None, metavar="FILE",
                        help="also write the output to FILE")

    dash = sub.add_parser(
        "dashboard", help="write the self-contained Gantt dashboard HTML"
    )
    dash.add_argument("--state-dir", default=None,
                      help="state file, run directory, or state root")
    dash.add_argument("--output", default="flow-gantt.html", metavar="FILE")

    diff = sub.add_parser(
        "diff", help="compare two flow runs (recomputed set, digests, walls, bench)"
    )
    diff.add_argument("run_a", metavar="A",
                      help="baseline: state file, run directory, or state root")
    diff.add_argument("run_b", metavar="B", help="candidate: same forms as A")
    diff.add_argument("--json", action="store_true", dest="as_json")
    diff.add_argument("--assert-no-changes", action="store_true",
                      help="exit 4 unless B recomputed nothing and every "
                           "output digest matches A")
    return parser


def _cmd_list(args) -> int:
    graph = build_graph(args.mode)
    order = graph.topological_order()
    width = max(len(name) for name in order)
    for name in order:
        task = graph[name]
        deps = f" <- {', '.join(task.deps)}" if task.deps else ""
        print(f"{name:<{width}}  [{task.kind}] {task.description}{deps}")
    return 0


def _cmd_status(args) -> int:
    root = args.state_dir if args.state_dir is not None else flow_root()
    path = os.path.join(str(root), "flow-state.json")
    state = FlowState.load(path)
    if state is None:
        print(f"no flow state at {path}")
        return 1
    if args.as_json:
        print(json.dumps(state.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"run {state.run_key} (mode={state.mode}, code={state.code_version})")
    print(json.dumps(state.last_run, indent=2, sort_keys=True))
    width = max((len(n) for n in state.tasks), default=4)
    for name, rec in state.tasks.items():
        note = "cached" if rec.cached else (f"{rec.wall_s:.1f}s" if rec.wall_s else "")
        error = f"  {rec.error.strip().splitlines()[-1]}" if rec.error else ""
        print(f"  {name:<{width}} {rec.status:<8} {note}{error}")
    return 0


def _load_state_doc(state_dir):
    """The raw state document for report/dashboard (default: flow root)."""
    from repro.flow.diff import resolve_state_path

    spec = state_dir if state_dir is not None else str(flow_root())
    path = resolve_state_path(spec)
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _cmd_report(args) -> int:
    from repro.obs.flowreport import flow_report, format_flow_report

    report = flow_report(_load_state_doc(args.state_dir))
    text = (json.dumps(report, indent=2, sort_keys=True) + "\n"
            if args.as_json else format_flow_report(report))
    print(text, end="")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
    return 0


def _cmd_dashboard(args) -> int:
    from repro.obs.flowdash import write_flow_dashboard

    write_flow_dashboard(_load_state_doc(args.state_dir), args.output)
    print(f"flow dashboard: {args.output}")
    return 0


def _cmd_diff(args) -> int:
    from repro.flow.diff import flow_diff, format_flow_diff

    diff = flow_diff(args.run_a, args.run_b)
    if args.as_json:
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        print(format_flow_diff(diff), end="")
    if args.assert_no_changes and not diff["clean"]:
        print(
            "assert-no-changes FAILED: "
            f"{len(diff['recomputed_in_b'])} task(s) recomputed, "
            f"{len(diff['digest_changed'])} output digest(s) changed",
            file=sys.stderr,
        )
        return 4
    return 0


def _cmd_run(args) -> int:
    if args.cache_dir is not None:
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
    task_jobs = effective_jobs(args.jobs)
    # Parallelism lives at exactly one level: many tasks x serial sweeps,
    # or one task at a time x parallel sweeps.  Results are identical
    # either way (sweep determinism contract).
    inner_jobs = 1 if task_jobs > 1 else 0
    graph = build_graph(args.mode, jobs=inner_jobs, cache=not args.no_cache)
    runner = FlowRunner(graph, mode=args.mode, state_root=args.state_dir,
                        jobs=task_jobs)

    if args.dry_run:
        plan = runner.plan(only=args.only, force=args.force)
        for entry in plan:
            print(f"{entry['action']:<7} {entry['task']:<22} [{entry['kind']}]")
        runnable = sum(1 for e in plan if e["action"] == "run")
        print(f"dry run: {runnable} to run, {len(plan) - runnable} cached "
              f"(state: {runner.run_dir.state_path})")
        return 0

    result = runner.run(only=args.only, force=args.force)
    for line in result.summary_lines():
        print(line)
    print(f"state: {result.state_path}")

    def task_result(name):
        if name in result.results:
            return result.results[name]
        ok, value = runner.load_result(name)
        return value if ok else None

    if args.print_report or args.report_out:
        report = task_result("report")
        if report is not None:
            if args.print_report:
                print(report, end="")
            if args.report_out:
                with open(args.report_out, "w", encoding="utf-8") as fh:
                    fh.write(report)
    if args.bench_out:
        bench = task_result("bench")
        if bench is not None:
            from repro.parallel.cache import code_version

            # Flow provenance: which orchestrated run produced this report.
            # bench_compare prints it so two reports are always attributable.
            bench = dict(bench)
            bench["flow"] = {
                "run_key": runner.run_key,
                "mode": args.mode,
                "jobs": task_jobs,
                "code_version": code_version(),
                "state_dir": str(runner.run_dir.path),
            }
            with open(args.bench_out, "w", encoding="utf-8") as fh:
                json.dump(bench, fh, indent=2, sort_keys=True, allow_nan=False)
                fh.write("\n")
    if args.dashboard_out:
        dashboard = task_result("dashboard")
        if dashboard is not None:
            with open(args.dashboard_out, "w", encoding="utf-8") as fh:
                fh.write(dashboard)

    if args.assert_cached and result.executed:
        print(f"assert-cached FAILED: {len(result.executed)} task(s) recomputed: "
              f"{', '.join(result.executed)}", file=sys.stderr)
        return 3
    return 0 if result.ok else 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "dashboard":
            return _cmd_dashboard(args)
        if args.command == "diff":
            return _cmd_diff(args)
        return _cmd_run(args)
    except FlowError as exc:
        print(f"flow error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
