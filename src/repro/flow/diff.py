"""Cross-run forensics: what changed between two flow runs.

``python -m repro flow diff A B`` answers the questions a regression
hunt starts with, straight from two ``flow-state.json`` documents:

* **what was recomputed** — tasks run B actually executed instead of
  resolving from cache.  A warm re-run diffed against its own cold run
  must report zero here (and zero digest changes) — that is the CI
  incremental-re-run proof, enforced by ``--assert-no-changes``;
* **what produced different outputs** — per-task ``output_digest``
  changes, plus cache-key changes (inputs moved) and status flips;
* **where the time went** — per-task wall deltas sorted by magnitude;
* **what the benchmarks say** — when both run directories persisted a
  bench report (``results/bench.pkl``), the deltas run through
  ``scripts/bench_compare.py``'s ``compare()`` so the diff applies the
  exact same direction-aware thresholds as the CI regression gate.

Either side may be given as a state file, a run directory, or a state
root (the newest run directory wins) — the same paths CI already
uploads as artifacts.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.flow.graph import FlowError

__all__ = [
    "flow_diff",
    "format_flow_diff",
    "load_bench_compare",
    "repo_root",
    "resolve_state_path",
]

#: Wall-delta entries smaller than this are scheduling noise, not signal.
_WALL_NOISE_S = 0.05


def repo_root() -> Optional[Path]:
    """The checkout root (where BENCH_baseline.json and scripts/ live), if
    this is a src-layout checkout rather than an installed package."""
    import repro

    root = Path(repro.__file__).resolve().parents[2]
    if (root / "scripts" / "bench_compare.py").exists():
        return root
    return None


def load_bench_compare():
    """The ``scripts/bench_compare.py`` module, or None outside a checkout.

    Loaded by file path (scripts/ is not a package) so the CI gate's
    thresholds and metric selection stay single-sourced.
    """
    import importlib.util

    root = repo_root()
    if root is None:
        return None
    spec = importlib.util.spec_from_file_location(
        "repro_flow_bench_compare", root / "scripts" / "bench_compare.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def resolve_state_path(spec: str) -> Path:
    """Resolve a user-given path to a concrete ``flow-state.json``.

    Accepts the state file itself, a run directory containing one, or a
    state root holding run directories (newest state file wins — the run
    the user most recently touched).
    """
    path = Path(spec)
    if path.is_file():
        return path
    if path.is_dir():
        direct = path / "flow-state.json"
        if direct.is_file():
            return direct
        candidates = sorted(
            path.glob("*/flow-state.json"), key=lambda p: p.stat().st_mtime
        )
        if candidates:
            return candidates[-1]
    raise FlowError(f"no flow-state.json at or under {spec!r}")


def _load_doc(path: Path) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        raise FlowError(f"cannot read flow state {path}: {exc}") from exc


def _load_bench_report(state_path: Path, run_key: str) -> Optional[Dict[str, Any]]:
    """The persisted bench-task result for a state file, if any.

    Checked next to the state file (a run directory) and then under
    ``<run_key>/`` (the root-level mirror copy points into its run dir).
    """
    candidates = [state_path.parent / "results" / "bench.pkl"]
    if run_key:
        candidates.append(state_path.parent / run_key / "results" / "bench.pkl")
    for path in candidates:
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError):
            continue
        if isinstance(value, dict):
            return value
    return None


def _meta(doc: Mapping[str, Any], path: Path) -> Dict[str, Any]:
    return {
        "path": str(path),
        "run_key": doc.get("run_key", ""),
        "mode": doc.get("mode", ""),
        "schema": doc.get("schema"),
        "code_version": doc.get("code_version", ""),
        "last_run": dict(doc.get("last_run", {})),
    }


def flow_diff(path_a: str, path_b: str) -> Dict[str, Any]:
    """The full structural + performance diff between two flow runs."""
    a_path = resolve_state_path(path_a)
    b_path = resolve_state_path(path_b)
    a = _load_doc(a_path)
    b = _load_doc(b_path)
    tasks_a: Dict[str, Mapping[str, Any]] = a.get("tasks", {})
    tasks_b: Dict[str, Mapping[str, Any]] = b.get("tasks", {})
    shared = [name for name in tasks_a if name in tasks_b]

    recomputed_in_b = sorted(
        name for name, rec in tasks_b.items()
        if rec.get("status") in ("done", "failed") and not rec.get("cached")
    )
    digest_changed = [
        {"task": name, "a": tasks_a[name].get("digest", ""),
         "b": tasks_b[name].get("digest", "")}
        for name in shared
        if tasks_a[name].get("digest") and tasks_b[name].get("digest")
        and tasks_a[name]["digest"] != tasks_b[name]["digest"]
    ]
    key_changed = [
        {"task": name, "a": tasks_a[name].get("key", "")[:16],
         "b": tasks_b[name].get("key", "")[:16]}
        for name in shared
        if tasks_a[name].get("key") and tasks_b[name].get("key")
        and tasks_a[name]["key"] != tasks_b[name]["key"]
    ]
    status_changed = [
        {"task": name, "a": tasks_a[name].get("status", ""),
         "b": tasks_b[name].get("status", "")}
        for name in shared
        if tasks_a[name].get("status") != tasks_b[name].get("status")
    ]
    wall_delta = []
    for name in shared:
        wa = float(tasks_a[name].get("wall_s", 0.0))
        wb = float(tasks_b[name].get("wall_s", 0.0))
        if wa <= 0.0 and wb <= 0.0:
            continue
        delta = wb - wa
        if abs(delta) < _WALL_NOISE_S:
            continue
        wall_delta.append({
            "task": name,
            "a_s": wa,
            "b_s": wb,
            "delta_s": delta,
            "pct": (delta / wa * 100.0) if wa > 0 else 0.0,
        })
    wall_delta.sort(key=lambda e: -abs(e["delta_s"]))

    bench: Dict[str, Any] = {"available": False}
    bench_a = _load_bench_report(a_path, a.get("run_key", ""))
    bench_b = _load_bench_report(b_path, b.get("run_key", ""))
    if bench_a is None or bench_b is None:
        bench["reason"] = "bench report missing from one or both runs"
    else:
        mod = load_bench_compare()
        if mod is None:
            bench["reason"] = "scripts/bench_compare.py not available"
        else:
            lines, regressions = mod.compare(bench_a, bench_b)
            bench = {"available": True, "lines": lines, "regressions": regressions}

    total_a = sum(float(r.get("wall_s", 0.0)) for r in tasks_a.values())
    total_b = sum(float(r.get("wall_s", 0.0)) for r in tasks_b.values())
    return {
        "a": _meta(a, a_path),
        "b": _meta(b, b_path),
        "only_in_a": sorted(set(tasks_a) - set(tasks_b)),
        "only_in_b": sorted(set(tasks_b) - set(tasks_a)),
        "recomputed_in_b": recomputed_in_b,
        "digest_changed": digest_changed,
        "key_changed": key_changed,
        "status_changed": status_changed,
        "wall_delta": wall_delta,
        "total_wall": {"a_s": total_a, "b_s": total_b, "delta_s": total_b - total_a},
        "bench": bench,
        #: the --assert-no-changes predicate: nothing recomputed, no output moved
        "clean": not recomputed_in_b and not digest_changed,
    }


def format_flow_diff(diff: Mapping[str, Any]) -> str:
    """Human-readable rendering of :func:`flow_diff` output."""
    lines: List[str] = []
    for side in ("a", "b"):
        meta = diff[side]
        lines.append(
            f"{side.upper()}: run {meta['run_key']} (mode={meta['mode']}, "
            f"code={meta['code_version']}) — {meta['path']}"
        )
    if diff["only_in_a"]:
        lines.append(f"  only in A: {', '.join(diff['only_in_a'])}")
    if diff["only_in_b"]:
        lines.append(f"  only in B: {', '.join(diff['only_in_b'])}")
    if diff["recomputed_in_b"]:
        lines.append(
            f"  recomputed in B ({len(diff['recomputed_in_b'])}): "
            + ", ".join(diff["recomputed_in_b"])
        )
    else:
        lines.append("  recomputed in B: none (fully cache-resolved)")
    if diff["digest_changed"]:
        lines.append(f"  output digests changed ({len(diff['digest_changed'])}):")
        for entry in diff["digest_changed"]:
            lines.append(f"    {entry['task']:<24} {entry['a']} -> {entry['b']}")
    else:
        lines.append("  output digests: identical")
    if diff["key_changed"]:
        lines.append(f"  cache keys changed ({len(diff['key_changed'])}):")
        for entry in diff["key_changed"]:
            lines.append(f"    {entry['task']:<24} {entry['a']}… -> {entry['b']}…")
    for entry in diff["status_changed"]:
        lines.append(f"  status: {entry['task']} {entry['a']} -> {entry['b']}")
    if diff["wall_delta"]:
        lines.append("  wall deltas (>|{:.0f}| ms):".format(_WALL_NOISE_S * 1000))
        for entry in diff["wall_delta"][:10]:
            lines.append(
                f"    {entry['task']:<24} {entry['a_s']:8.2f}s -> {entry['b_s']:8.2f}s "
                f"({entry['delta_s']:+.2f}s, {entry['pct']:+.1f}%)"
            )
    total = diff["total_wall"]
    lines.append(
        f"  total recorded wall: {total['a_s']:.2f}s -> {total['b_s']:.2f}s "
        f"({total['delta_s']:+.2f}s)"
    )
    bench = diff["bench"]
    if bench.get("available"):
        lines.append("  bench metric deltas (A = baseline):")
        for line in bench["lines"]:
            lines.append(f"    {line}")
        if bench["regressions"]:
            lines.append(f"  bench regressions ({len(bench['regressions'])}):")
            for reg in bench["regressions"]:
                lines.append(f"    {reg}")
    else:
        lines.append(f"  bench comparison unavailable: {bench.get('reason', '?')}")
    lines.append("  verdict: " + ("CLEAN (B is a pure cache replay of A)"
                                  if diff["clean"] else "CHANGED"))
    return "\n".join(lines) + "\n"
