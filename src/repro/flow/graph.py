"""The experiment DAG: task declarations and dependency resolution.

A :class:`Task` is one node of the orchestration graph — an experiment
sweep, a figure render, the bench report, the dashboard — declared as a
module-level callable plus picklable kwargs (the same contract as
:class:`repro.parallel.SweepPoint`, because tasks cross process
boundaries the same way).  A :class:`TaskGraph` owns the nodes, checks
the dependency structure up front (unknown deps, duplicates, cycles) and
answers the two scheduling questions the runner asks: a deterministic
topological order, and the ancestor closure of a ``--only`` selection.

Determinism note: :meth:`TaskGraph.topological_order` is Kahn's
algorithm with a FIFO ready queue seeded in insertion order, so the
order is a pure function of the declaration — worker scheduling can
never reshuffle it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = ["FlowError", "Task", "TaskGraph"]


class FlowError(ReproError):
    """Raised for invalid flow graphs or runner misuse (cycles, unknown tasks)."""


@dataclass(frozen=True)
class Task:
    """One node of the experiment DAG.

    ``fn`` is called as ``fn(deps, **kwargs)`` where ``deps`` maps each
    dependency's task name to its result.  It must be a module-level
    callable and ``kwargs`` must be picklable so the task can run in a
    worker process; results must be picklable so they can be persisted
    to the run directory.
    """

    name: str
    fn: Callable[..., Any]
    deps: Tuple[str, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    #: runtime knobs (worker counts, cache toggles) merged into the call
    #: but excluded from cache keys — they must never change results.
    volatile: Mapping[str, Any] = field(default_factory=dict)
    kind: str = "task"  #: coarse grouping for display: calibrate/sweep/render/bench/...
    description: str = ""
    #: wall-clock budget in seconds (None = no budget).  Volatile like the
    #: runtime knobs: the runner checks and reports overruns, but the
    #: budget never reaches :func:`~repro.flow.state.task_key` or
    #: :func:`~repro.flow.state.run_key_for` — editing a budget must not
    #: invalidate any cached work.
    budget_s: Optional[float] = None

    def call_kwargs(self) -> Dict[str, Any]:
        """The merged kwargs the runner actually calls ``fn`` with."""
        merged = dict(self.kwargs)
        merged.update(self.volatile)
        return merged


class TaskGraph:
    """An insertion-ordered DAG of :class:`Task` nodes."""

    def __init__(self, tasks: Iterable[Task] = ()):
        self._tasks: Dict[str, Task] = {}
        for task in tasks:
            self.add(task)

    def add(self, task: Task) -> Task:
        """Add a node; duplicate names are declaration bugs, not data."""
        if task.name in self._tasks:
            raise FlowError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task
        return task

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __getitem__(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise FlowError(f"unknown task {name!r}") from None

    @property
    def tasks(self) -> List[Task]:
        """All tasks in declaration order."""
        return list(self._tasks.values())

    def validate(self) -> None:
        """Check every declared dependency exists and the graph is acyclic."""
        for task in self._tasks.values():
            for dep in task.deps:
                if dep not in self._tasks:
                    raise FlowError(f"task {task.name!r} depends on unknown task {dep!r}")
        self.topological_order()

    def dependents(self) -> Dict[str, List[str]]:
        """``{name: [tasks that list it as a dep]}`` in declaration order."""
        out: Dict[str, List[str]] = {name: [] for name in self._tasks}
        for task in self._tasks.values():
            for dep in task.deps:
                if dep in out:
                    out[dep].append(task.name)
        return out

    def topological_order(self, names: Optional[Iterable[str]] = None) -> List[str]:
        """Deterministic topological order of ``names`` (default: all tasks).

        Raises :class:`FlowError` naming the offending tasks when the
        (sub)graph contains a cycle.
        """
        selected = list(self._tasks) if names is None else list(names)
        selected_set = set(selected)
        indegree: Dict[str, int] = {}
        for name in selected:
            task = self[name]
            indegree[name] = sum(1 for d in task.deps if d in selected_set)
        ready = [name for name in selected if indegree[name] == 0]
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for dependent in selected:
                if name in self[dependent].deps:
                    indegree[dependent] -= 1
                    if indegree[dependent] == 0:
                        ready.append(dependent)
        if len(order) != len(selected):
            cyclic = sorted(set(selected) - set(order))
            raise FlowError(f"dependency cycle among tasks: {', '.join(cyclic)}")
        return order

    def closure(self, names: Sequence[str]) -> List[str]:
        """``names`` plus every transitive dependency, topologically ordered.

        This is the ``--only`` semantics: asking for a figure render pulls
        in its sweep (and the sweep's calibration) automatically.
        """
        pending = list(names)
        seen: set = set()
        while pending:
            name = pending.pop()
            if name in seen:
                continue
            seen.add(name)
            pending.extend(self[name].deps)
        # Seed in declaration order, not set order, to keep the result a
        # pure function of the declaration (hash order is not).
        return self.topological_order([n for n in self._tasks if n in seen])
