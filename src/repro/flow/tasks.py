"""The paper-reproduction DAG: every experiment, render and artifact as tasks.

This module is the single declaration of *what the full reproduction is*:

* ``calibrate`` — a cheap sanity run every sweep depends on; it fails fast
  (before hours of sweeping) if the simulator's basic readouts are off.
* one **sweep task per experiment** (``table1``, ``fig4-udp``, … ,
  ``schedsweep``), parameterized exactly like the flat
  ``scripts/run_all_experiments.py`` in ``full`` mode, and with each
  experiment module's ``FLOW_REDUCED`` overrides in ``reduced`` mode
  (short windows + trimmed grids — what CI runs end-to-end);
* one **render task per sweep** producing the paper-style text table;
* the **bench report** (``bench``), with ``bench-compare`` (regression
  gate vs the checked-in baseline) and ``dashboard`` (self-contained
  HTML) downstream of it;
* ``report`` — the concatenation of every render in flat-script order:
  the EXPERIMENTS.md source text.

Every task callable lives at module level and takes ``(deps, **kwargs)``
so it can cross process boundaries; runtime knobs (``jobs``, ``cache``)
ride in the task's *volatile* kwargs and never reach cache keys.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments import ablations, coalescing, fig4, fig5, fig6, fig7, fig8, fig9
from repro.experiments import rack, schedzoo, sriov, table1
from repro.flow.graph import FlowError, Task, TaskGraph
from repro.units import MS, SEC

__all__ = ["MODES", "build_graph", "task_names"]

MODES = ("full", "reduced")

#: Flat-script windows (scripts/run_all_experiments.py history).
_WARMUP = 200 * MS
_MEASURE = 500 * MS

#: (task, label, runner, formatter, format args, full-mode params, module)
#: — declaration order is flat-script order; the report joins in it.
_EXPERIMENTS = (
    ("table1", "Table I", table1.run_table1, table1.format_table1, (),
     dict(seed=1, warmup_ns=_WARMUP, measure_ns=_MEASURE), table1),
    ("fig4-udp", "Fig 4a (UDP)", fig4.run_fig4, fig4.format_fig4, ("udp",),
     dict(protocol="udp", seed=1, warmup_ns=_WARMUP, measure_ns=_MEASURE), fig4),
    ("fig4-udp-1024", "Fig 4a (UDP 1024B)", fig4.run_fig4, fig4.format_fig4, ("udp-1024",),
     dict(protocol="udp", payload_size=1024, quotas=(32, 16, 8), seed=1,
          warmup_ns=_WARMUP, measure_ns=_MEASURE), fig4),
    ("fig4-tcp", "Fig 4b (TCP)", fig4.run_fig4, fig4.format_fig4, ("tcp",),
     dict(protocol="tcp", seed=1, warmup_ns=_WARMUP, measure_ns=_MEASURE), fig4),
    ("fig5", "Fig 5", fig5.run_fig5, fig5.format_fig5, (),
     dict(seed=1, warmup_ns=_WARMUP, measure_ns=_MEASURE), fig5),
    ("fig6-send", "Fig 6a (send)", fig6.run_fig6, fig6.format_fig6, ("send",),
     dict(direction="send", seed=3, warmup_ns=300 * MS, measure_ns=600 * MS), fig6),
    ("fig6-receive", "Fig 6b (receive)", fig6.run_fig6, fig6.format_fig6, ("receive",),
     dict(direction="receive", seed=3, warmup_ns=300 * MS, measure_ns=600 * MS), fig6),
    ("fig7", "Fig 7", fig7.run_fig7, fig7.format_fig7, (),
     dict(seed=3, duration_ns=int(1.5 * SEC)), fig7),
    ("fig8-memcached", "Fig 8a (memcached)", fig8.run_fig8, fig8.format_fig8, ("memcached",),
     dict(application="memcached", seed=3, warmup_ns=300 * MS, measure_ns=600 * MS), fig8),
    ("fig8-apache", "Fig 8b (apache)", fig8.run_fig8, fig8.format_fig8, ("apache",),
     dict(application="apache", seed=3, warmup_ns=300 * MS, measure_ns=600 * MS), fig8),
    ("fig9", "Fig 9", fig9.run_fig9, None, (),
     dict(seed=3, duration_ns=2 * SEC, configs=("Baseline", "PI", "PI+H", "PI+H+R")), fig9),
    ("sriov", "SR-IOV (Section VII)", sriov.run_sriov, sriov.format_sriov, (),
     dict(seed=3, warmup_ns=300 * MS, measure_ns=600 * MS), sriov),
    ("ablation", "Ablation: redirection policies",
     ablations.run_redirect_policy_ablation, ablations.format_redirect_ablation, (),
     dict(seed=3, duration_ns=int(1.5 * SEC)), ablations),
    ("coalescing", "Ablation: vIC coalescing vs ES2",
     coalescing.run_coalescing, coalescing.format_coalescing, (),
     dict(seed=5, warmup_ns=_WARMUP, measure_ns=_MEASURE), coalescing),
    ("schedsweep", "Scheduler policy zoo x redirection x adaptive allocation",
     schedzoo.run_sched_sweep, schedzoo.format_sched_sweep, (),
     dict(seed=3, duration_ns=int(0.8 * SEC)), schedzoo),
    ("rack", "Rack: sharded multi-host fan-out",
     rack.run_rack, rack.format_rack, (),
     # telemetry=True: rack observability (stitched spans, barrier
     # profile) rides along; observer-only, the digest check still holds.
     dict(seed=3, warmup_ns=2 * MS, measure_ns=20 * MS, telemetry=True), rack),
)


# -- task callables (module-level: they run in worker processes) ----------


def calibrate_task(deps, seed=1, warmup_ns=20 * MS, measure_ns=60 * MS):
    """Fail fast if the simulator's basic readouts are off.

    Runs one Baseline and one PI+H+R single-vCPU netperf window and
    checks the invariants every experiment implicitly relies on: traffic
    flows, TIG is a fraction, PI removes the interrupt-exit rows.
    """
    from repro.core.configs import paper_config
    from repro.experiments.runner import measure_window
    from repro.experiments.testbed import single_vcpu_testbed
    from repro.workloads.netperf import NetperfUdpSend

    readout = {}
    for config in ("Baseline", "PI+H+R"):
        feats = paper_config(config) if config == "Baseline" else paper_config(config, quota=8)
        tb = single_vcpu_testbed(feats, seed=seed)
        wl = NetperfUdpSend(tb, tb.tested, n_streams=1, payload_size=256)
        run = measure_window(tb, wl, warmup_ns, measure_ns, config_name=config)
        if run.throughput_gbps <= 0:
            raise FlowError(f"calibration: no traffic under {config}")
        if not 0.0 < run.tig <= 1.0:
            raise FlowError(f"calibration: TIG {run.tig} out of range under {config}")
        readout[config] = {
            "throughput_gbps": run.throughput_gbps,
            "tig": run.tig,
            "total_exits_per_sec": run.total_exit_rate,
            "interrupt_delivery_per_sec": run.exit_rates.interrupt_delivery,
        }
    if readout["PI+H+R"]["interrupt_delivery_per_sec"] >= \
            readout["Baseline"]["interrupt_delivery_per_sec"]:
        raise FlowError("calibration: posted interrupts did not reduce delivery exits")
    return readout


def experiment_task(deps, runner, params, jobs=None, cache=True):
    """One experiment sweep; ``calibrate`` gates it through ``deps``."""
    return runner(jobs=jobs, cache=cache, **params)


def render_task(deps, source, formatter, format_args=()):
    """Render one sweep's results as the paper-style text table."""
    return formatter(deps[source], *format_args)


def render_fig9_task(deps, source="fig9"):
    """Fig 9 render plus the per-configuration knee lines the flat script printed."""
    from repro.experiments.fig9 import find_knee, format_fig9

    results = deps[source]
    lines = [format_fig9(results)]
    for cfg in sorted({c for (c, _) in results}):
        lines.append(f"knee[{cfg}] = {find_knee(results, cfg)}/s")
    return "\n".join(lines)


def bench_task(deps, profile=False, revision="flow"):
    """The machine-readable bench report (schema-versioned dict)."""
    from repro.obs.bench import run_bench

    return run_bench(profile=profile, revision=revision)


def bench_compare_task(deps, source="bench", baseline="BENCH_baseline.json"):
    """Gate the fresh bench report against the checked-in baseline.

    Reuses scripts/bench_compare.py (the CI gate, loaded via
    :func:`repro.flow.diff.load_bench_compare`) so thresholds and metric
    selection live in one place; raises on regression so the flow exits
    nonzero.  Outside a checkout (no scripts/), the gate degrades to a
    recorded skip rather than a failure.
    """
    import json

    from repro.flow.diff import load_bench_compare, repo_root

    root = repo_root()
    if root is None or not (root / baseline).exists():
        return {"ok": True, "skipped": "no checkout baseline to compare against",
                "lines": []}
    mod = load_bench_compare()
    with open(root / baseline, "r", encoding="utf-8") as fh:
        base = json.load(fh)
    lines, regressions = mod.compare(base, deps[source])
    if regressions:
        raise FlowError(
            "bench regression vs baseline: " + "; ".join(regressions)
        )
    return {"ok": True, "lines": lines, "regressions": []}


def dashboard_task(deps, source="bench"):
    """The self-contained HTML dashboard rendered from the bench report."""
    from repro.obs.dashboard import render_dashboard

    return render_dashboard(deps[source])


def report_task(deps, sections):
    """Concatenate the rendered sections in flat-script order.

    This text is the EXPERIMENTS.md source — what the flat runner used to
    print stage by stage.
    """
    parts = []
    for label, name in sections:
        parts.append(f"===== {label} =====\n{deps[name]}")
    return "\n\n".join(parts) + "\n"


# -- graph construction ---------------------------------------------------

#: Per-kind wall budgets in seconds, by mode.  Warn-only: the runner
#: reports overruns in the summary / flow report / dashboard but never
#: fails the run, and budgets are volatile-like (excluded from cache
#: keys), so tuning them cannot invalidate cached work.  Values are
#: deliberately generous — they exist to flag a task whose cost
#: *regressed*, not to race healthy runs.
_BUDGETS = {
    "full": {"calibrate": 120.0, "sweep": 3600.0, "render": 60.0,
             "bench": 900.0, "report": 60.0},
    "reduced": {"calibrate": 60.0, "sweep": 600.0, "render": 30.0,
                "bench": 300.0, "report": 30.0},
}


def _budget(mode: str, kind: str) -> Optional[float]:
    return _BUDGETS.get(mode, {}).get(kind)


def build_graph(mode: str = "full", jobs: Optional[int] = None,
                cache: bool = True) -> TaskGraph:
    """The reproduction DAG for one mode.

    ``jobs``/``cache`` are the **inner** sweep-level settings each
    experiment fans out with; they ride in volatile kwargs, so they never
    influence cache keys (results are jobs-independent by the sweep
    determinism contract).
    """
    if mode not in MODES:
        raise FlowError(f"unknown flow mode {mode!r} (expected one of {MODES})")
    graph = TaskGraph()
    volatile = dict(jobs=jobs, cache=cache)
    graph.add(Task(
        name="calibrate", fn=calibrate_task, kind="calibrate",
        budget_s=_budget(mode, "calibrate"),
        kwargs=dict(seed=1) if mode == "full" else dict(seed=1, warmup_ns=10 * MS,
                                                        measure_ns=30 * MS),
        description="sanity-check simulator readouts before sweeping",
    ))
    sections = []
    for name, label, runner, formatter, format_args, full_params, module in _EXPERIMENTS:
        params = dict(full_params)
        if mode == "reduced":
            params.update(module.FLOW_REDUCED)
        graph.add(Task(
            name=name, fn=experiment_task, deps=("calibrate",), kind="sweep",
            budget_s=_budget(mode, "sweep"),
            kwargs=dict(runner=runner, params=params), volatile=volatile,
            description=f"{label} sweep",
        ))
        render_name = f"render-{name}"
        if name == "fig9":
            graph.add(Task(
                name=render_name, fn=render_fig9_task, deps=(name,), kind="render",
                budget_s=_budget(mode, "render"),
                kwargs=dict(source=name), description=f"{label} table + knees",
            ))
        else:
            graph.add(Task(
                name=render_name, fn=render_task, deps=(name,), kind="render",
                budget_s=_budget(mode, "render"),
                kwargs=dict(source=name, formatter=formatter, format_args=format_args),
                description=f"{label} table",
            ))
        sections.append((label, render_name))
    graph.add(Task(
        name="bench", fn=bench_task, deps=("calibrate",), kind="bench",
        budget_s=_budget(mode, "bench"),
        description="machine-readable bench report (BENCH_<rev>.json payload)",
    ))
    graph.add(Task(
        name="bench-compare", fn=bench_compare_task, deps=("bench",), kind="bench",
        budget_s=_budget(mode, "bench"),
        description="regression gate vs checked-in BENCH_baseline.json",
    ))
    graph.add(Task(
        name="dashboard", fn=dashboard_task, deps=("bench",), kind="render",
        budget_s=_budget(mode, "render"),
        description="self-contained HTML dashboard from the bench report",
    ))
    graph.add(Task(
        name="report", fn=report_task,
        deps=tuple(render for _, render in sections), kind="report",
        budget_s=_budget(mode, "report"),
        kwargs=dict(sections=tuple(sections)),
        description="EXPERIMENTS.md source text (all renders, flat-script order)",
    ))
    graph.validate()
    return graph


def task_names(mode: str = "full") -> list:
    """Declaration-order task names (the ``flow list`` payload)."""
    return [task.name for task in build_graph(mode).tasks]
