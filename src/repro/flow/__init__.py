"""DAG-driven experiment orchestration with resumable state.

The flat ``scripts/run_all_experiments.py`` fan-out became a dependency-
aware task graph (cylc-flow is the architectural reference): experiments,
figure renders, the bench report and the dashboard are :class:`Task`
nodes; a scheduler walks them in topological order, fans independent
tasks over :mod:`repro.parallel`'s process pool, and persists per-task
state + output digests to an on-disk run directory so re-invocations
resume exactly where they stopped and only re-run what changed.

Entry points: ``python -m repro flow run`` (CLI), or programmatically::

    from repro.flow import FlowRunner, build_graph
    result = FlowRunner(build_graph("reduced"), mode="reduced").run()

See DESIGN.md §15 for the architecture and §16 for the observability
layer (per-task resource accounting, critical-path analysis via
:mod:`repro.obs.flowreport`, and cross-run diffing via
:mod:`repro.flow.diff`).
"""

from repro.flow.diff import flow_diff, format_flow_diff
from repro.flow.graph import FlowError, Task, TaskGraph
from repro.flow.runner import FlowResult, FlowRunner
from repro.flow.state import FlowState, TaskRecord, flow_root
from repro.flow.tasks import MODES, build_graph, task_names

__all__ = [
    "FlowError",
    "FlowResult",
    "FlowRunner",
    "FlowState",
    "MODES",
    "Task",
    "TaskGraph",
    "TaskRecord",
    "build_graph",
    "flow_diff",
    "flow_root",
    "format_flow_diff",
    "task_names",
]
