"""Resumable on-disk state for flow runs.

A flow run lives in a **run directory** under ``$REPRO_FLOW_DIR`` (default
``<cache>/flow``), keyed by the graph's *structure* (task names, deps,
callables) and mode.  Task kwargs and the ``repro`` code-version hash are
deliberately not part of the directory key — they live in each task's
:func:`task_key` — so re-invoking after a parameter or code edit lands in
the *same* run directory and re-runs exactly the invalidated downstream
cone, while an identical re-invocation resumes where the previous one
stopped.

Inside a run directory:

* ``flow-state.json`` — the machine-readable summary: one record per task
  (status, cache key, output digest, wall seconds, error, dependency
  names, and the schema-v2 resource accounting: CPU user/system seconds,
  peak-RSS delta, ready→start queue wait, worker id, start/finish stamps,
  budget verdict, cache-hit provenance) plus the counts of the most
  recent invocation (``executed``/``cached``/``failed``/``skipped``).
  Rewritten atomically after **every** task transition, so a crash
  mid-run loses at most the in-flight tasks.  Because the record carries
  its own ``deps``, downstream consumers (:mod:`repro.obs.flowreport`,
  :mod:`repro.flow.diff`) can reconstruct the DAG from the state file
  alone — no live graph required.
* ``results/<task>.pkl`` — the pickled return value of each completed
  task, written atomically; dependents and re-invocations load from here.

A task's cache key folds in its dependencies' **output digests**, so a
task re-runs iff its own declaration changed, the code changed, or any
upstream output changed — the incremental-re-run contract.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.flow.graph import Task
from repro.parallel.cache import canonical, code_version, default_cache_dir

__all__ = [
    "STATE_SCHEMA_VERSION",
    "FlowState",
    "TaskRecord",
    "flow_root",
    "output_digest",
    "run_key_for",
    "task_key",
]

#: Bump on any backwards-incompatible change to flow-state.json.  Loading
#: an older schema returns ``None`` — the documented fresh-start path — so
#: no record can ever carry fields a previous schema never wrote.
#: v2: per-task resource accounting (cpu/rss/queue-wait/worker/stamps),
#: dependency names, budget verdicts, and cache-hit provenance.
STATE_SCHEMA_VERSION = 2

#: Task lifecycle states recorded in flow-state.json.
STATUSES = ("pending", "running", "done", "failed", "skipped")


def flow_root() -> Path:
    """``$REPRO_FLOW_DIR`` or ``<result-cache>/flow``."""
    env = os.environ.get("REPRO_FLOW_DIR")
    if env:
        return Path(env)
    return default_cache_dir() / "flow"


def run_key_for(tasks, mode: str) -> str:
    """Run-directory key: graph *structure* (names, deps, callables) × mode.

    Deliberately excludes task kwargs and the code version — both are
    folded into each task's :func:`task_key` instead, so editing a
    parameter or the code re-runs exactly the affected downstream cone
    *inside the same run directory* rather than orphaning it.
    """
    digest = hashlib.sha256()
    digest.update(f"mode={mode}".encode())
    for task in tasks:
        digest.update(
            f"|{task.name}<-{','.join(task.deps)}"
            f":{task.fn.__module__}.{task.fn.__qualname__}".encode()
        )
    return digest.hexdigest()[:16]


def task_key(task: Task, dep_digests: Mapping[str, str]) -> str:
    """Incremental-re-run key for one task.

    Folds the task's callable, canonical kwargs, the code version, and the
    output digest of every dependency — so any upstream change invalidates
    exactly the downstream cone, nothing else.
    """
    blob = "|".join(
        (
            task.name,
            f"{task.fn.__module__}.{task.fn.__qualname__}",
            canonical(task.kwargs),
            code_version(),
            *(f"{dep}={dep_digests[dep]}" for dep in task.deps),
        )
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def output_digest(value: Any) -> str:
    """Stable content digest of a task result (via :func:`canonical`)."""
    return hashlib.sha256(canonical(value).encode()).hexdigest()[:16]


@dataclass
class TaskRecord:
    """Per-task state as persisted in flow-state.json (schema v2).

    The resource fields describe the *execution* that produced the
    recorded result; a cache hit preserves them (they are the provenance
    of the cached value), while re-execution overwrites them.  The
    ``running`` transition resets every resource field first, so a crash
    mid-task can never leave a partial record that mixes a live status
    with a dead execution's numbers.
    """

    name: str
    status: str = "pending"
    kind: str = "task"
    key: str = ""  #: task_key() the recorded status/digest belongs to
    digest: str = ""  #: output_digest() of the persisted result
    wall_s: float = 0.0  #: seconds the recorded execution took
    error: str = ""  #: one-line failure reason when status == "failed"/"skipped"
    cached: bool = False  #: True when the last invocation resolved it from cache
    deps: List[str] = field(default_factory=list)  #: dependency names (DAG edges)
    cpu_user_s: float = 0.0  #: worker getrusage user-CPU delta
    cpu_sys_s: float = 0.0  #: worker getrusage system-CPU delta
    peak_rss_kb: int = 0  #: how much the task raised the worker's peak RSS
    queue_wait_s: float = 0.0  #: ready (all deps done) → execution start
    worker: str = ""  #: executing process label (``pid:<n>``)
    started_unix: float = 0.0  #: wall-clock execution start (0 = never ran)
    finished_unix: float = 0.0  #: wall-clock execution end (0 = in flight)
    budget_s: float = 0.0  #: declared wall budget (0 = none declared)
    over_budget: bool = False  #: wall_s exceeded budget_s on last execution
    source: str = ""  #: provenance: "executed" | "cache" (last invocation)
    hit_count: int = 0  #: cache resolutions since the recorded execution

    def reset_resources(self) -> None:
        """Clear every execution-scoped field (the ``running`` transition).

        Invoked before a task launches so an interrupted invocation leaves
        no stale resource numbers attached to a non-``done`` record.
        """
        self.wall_s = 0.0
        self.cpu_user_s = 0.0
        self.cpu_sys_s = 0.0
        self.peak_rss_kb = 0
        self.queue_wait_s = 0.0
        self.worker = ""
        self.started_unix = 0.0
        self.finished_unix = 0.0
        self.over_budget = False
        self.source = ""
        self.hit_count = 0


@dataclass
class FlowState:
    """Everything flow-state.json holds."""

    run_key: str
    mode: str
    code_version: str = field(default_factory=code_version)
    schema: int = STATE_SCHEMA_VERSION
    tasks: Dict[str, TaskRecord] = field(default_factory=dict)
    #: counts for the most recent invocation (the CI resume assertion reads
    #: ``executed`` — a fully-cached re-run must report 0 there).
    last_run: Dict[str, Any] = field(default_factory=dict)

    def record(self, name: str) -> TaskRecord:
        """The record for ``name``, created pending on first access."""
        if name not in self.tasks:
            self.tasks[name] = TaskRecord(name=name)
        return self.tasks[name]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "run_key": self.run_key,
            "mode": self.mode,
            "code_version": self.code_version,
            "last_run": dict(self.last_run),
            "tasks": {name: asdict(rec) for name, rec in self.tasks.items()},
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "FlowState":
        state = cls(
            run_key=doc["run_key"],
            mode=doc["mode"],
            code_version=doc["code_version"],
            schema=doc["schema"],
            last_run=dict(doc.get("last_run", {})),
        )
        for name, rec in doc.get("tasks", {}).items():
            known = {f: rec[f] for f in TaskRecord.__dataclass_fields__ if f in rec}
            state.tasks[name] = TaskRecord(**known)
        return state

    def save(self, path: os.PathLike) -> None:
        """Atomic write (temp file + rename), mirroring the result cache."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: os.PathLike) -> Optional["FlowState"]:
        """Load a state file; any read/parse failure is a fresh start."""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            if doc.get("schema") != STATE_SCHEMA_VERSION:
                return None
            return cls.from_dict(doc)
        except (OSError, ValueError, KeyError, TypeError):
            return None


class RunDirectory:
    """Filesystem layout of one flow run (state file + result pickles)."""

    def __init__(self, root: Path, run_key: str):
        self.path = Path(root) / run_key
        self.state_path = self.path / "flow-state.json"
        self.results_dir = self.path / "results"

    def result_path(self, name: str) -> Path:
        return self.results_dir / f"{name}.pkl"

    def store_result(self, name: str, value: Any) -> None:
        """Persist one task result atomically; failures propagate (a run
        directory that cannot store results cannot honor resume)."""
        self.results_dir.mkdir(parents=True, exist_ok=True)
        path = self.result_path(name)
        fd, tmp = tempfile.mkstemp(dir=str(self.results_dir), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load_result(self, name: str) -> Tuple[bool, Any]:
        """``(ok, value)``; any failure degrades to a recompute."""
        try:
            with open(self.result_path(name), "rb") as fh:
                return True, pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            return False, None
