"""Hardware virtual-APIC page and posted-interrupt descriptor (Fig. 2).

With posted interrupts the hypervisor never touches the interrupt state of
a running vCPU.  It *posts* the vector into the vCPU's PI descriptor
(``PIR`` bits + outstanding-notification flag) and sends the special
notification IPI; hardware moves PIR bits into the virtual IRR of the
vAPIC page and delivers from there without a VM exit.  The EOI write is
likewise virtualized against the vAPIC page.

For a vCPU that is not in guest mode the posted bits simply wait in the
PIR and are synchronized into the vIRR at the next VM entry — which is the
scheduling-latency gap (Section III-B) that ES2's intelligent redirection
attacks.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.errors import HypervisorError

__all__ = ["PostedInterruptDescriptor", "VApicPage"]


class PostedInterruptDescriptor:
    """The 64-byte PI descriptor: PIR bitmap + outstanding notification."""

    def __init__(self) -> None:
        self.pir: Set[int] = set()
        #: outstanding-notification bit: a notify IPI is already in flight,
        #: so further posts need not send another one.
        self.on_bit = False
        self.posts = 0

    def post(self, vector: int) -> bool:
        """Post a vector; returns True if a notification should be sent
        (i.e. the ON bit was clear)."""
        if not 0 <= vector <= 0xFF:
            raise HypervisorError(f"vector out of range: {vector}")
        self.posts += 1
        self.pir.add(vector)
        if self.on_bit:
            return False
        self.on_bit = True
        return True

    def drain(self) -> Set[int]:
        """Atomically take all posted vectors and clear ON."""
        vectors, self.pir = self.pir, set()
        self.on_bit = False
        return vectors

    def has_pending(self) -> bool:
        """True if any vector is latched pending."""
        return bool(self.pir)


class VApicPage:
    """Per-vCPU hardware virtual-APIC page (vIRR/vISR + virtual EOI)."""

    def __init__(self, vcpu_name: str = "?"):
        self.vcpu_name = vcpu_name
        self.pi_desc = PostedInterruptDescriptor()
        self.virr: Set[int] = set()
        self.visr: Set[int] = set()
        self.virtual_eois = 0
        self.syncs = 0

    # ----------------------------------------------------------------- sync
    def sync_pir_to_virr(self) -> int:
        """Hardware PIR→vIRR synchronization (Fig. 2, step 3).  Returns the
        number of vectors moved."""
        vectors = self.pi_desc.drain()
        self.syncs += 1
        before = len(self.virr)
        self.virr |= vectors
        return len(self.virr) - before

    # ------------------------------------------------------------- delivery
    def has_deliverable(self) -> bool:
        """True if a pending vector may be delivered now."""
        virr = self.virr
        if not virr:
            return False
        visr = self.visr
        return not visr or max(visr) < max(virr)

    def highest_pending(self) -> Optional[int]:
        """Highest-priority pending vector, or None."""
        if not self.virr:
            return None
        return max(self.virr)

    def deliver(self) -> int:
        """Move the highest vIRR vector into service (non-exit delivery)."""
        virr = self.virr
        if virr:
            vec = max(virr)
            visr = self.visr
            if not visr or max(visr) < vec:
                virr.discard(vec)
                visr.add(vec)
                return vec
        raise HypervisorError(f"{self.vcpu_name}: deliver() with nothing deliverable")

    # ----------------------------------------------------------- completion
    def eoi(self) -> Optional[int]:
        """Virtualized EOI (Fig. 2, step 5): no VM exit."""
        self.virtual_eois += 1
        if not self.visr:
            return None
        vec = max(self.visr)
        self.visr.discard(vec)
        return vec

    def any_pending(self) -> bool:
        """Anything pending in either PIR or vIRR (wake condition for HLT)."""
        return bool(self.virr) or self.pi_desc.has_pending()
