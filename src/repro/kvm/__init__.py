"""Hypervisor model: VMs, vCPUs, VM exits, virtual interrupt machinery.

This package models the KVM slice that the paper's event path crosses:

* the VM-exit state machine with per-cause statistics (``perf kvm stat``);
* the software-emulated Local-APIC used by the Baseline configuration
  (IPI kick → External-Interrupt exit → inject-on-entry → EOI trap);
* the hardware vAPIC page + posted-interrupt descriptor used by the PI
  configurations (PIR posting, notification vector, sync-on-entry,
  virtualized EOI — Fig. 2);
* MSI interrupt routing with the ``kvm_set_msi_irq`` interception point that
  ES2's intelligent redirection hooks (Section V-C).
"""

from repro.kvm.exits import ExitReason, ExitStats, EXIT_CATEGORY
from repro.kvm.idt import VectorAllocator, is_device_vector, LOCAL_TIMER_VECTOR
from repro.kvm.apic_emul import EmulatedLapic
from repro.kvm.vapic import PostedInterruptDescriptor, VApicPage
from repro.kvm.vm import VirtualMachine
from repro.kvm.vcpu import Vcpu
from repro.kvm.hypervisor import Kvm
from repro.kvm.routing import IrqRouter

__all__ = [
    "ExitReason",
    "ExitStats",
    "EXIT_CATEGORY",
    "VectorAllocator",
    "is_device_vector",
    "LOCAL_TIMER_VECTOR",
    "EmulatedLapic",
    "PostedInterruptDescriptor",
    "VApicPage",
    "VirtualMachine",
    "Vcpu",
    "Kvm",
    "IrqRouter",
]
