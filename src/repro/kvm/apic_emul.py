"""Software-emulated per-vCPU Local-APIC (the Baseline interrupt path).

Keeps IRR (pending) and ISR (in-service) state like a real Local-APIC:
delivery moves the highest-priority IRR bit to ISR; the guest's EOI write
— which traps to the hypervisor as an APIC-access exit — clears the highest
ISR bit and allows the next pending interrupt to be injected.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.errors import HypervisorError

__all__ = ["EmulatedLapic"]


class EmulatedLapic:
    """Emulated Local-APIC interrupt state for one vCPU."""

    def __init__(self, vcpu_name: str = "?"):
        self.vcpu_name = vcpu_name
        self.irr: Set[int] = set()
        self.isr: Set[int] = set()
        self.set_irq_count = 0
        self.eoi_count = 0

    # --------------------------------------------------------------- pending
    def set_irq(self, vector: int) -> bool:
        """Latch a pending interrupt.  Returns False if it was already pending
        (interrupt coalescing, exactly like a real IRR bit)."""
        if not 0 <= vector <= 0xFF:
            raise HypervisorError(f"vector out of range: {vector}")
        self.set_irq_count += 1
        if vector in self.irr:
            return False
        self.irr.add(vector)
        return True

    def has_pending(self) -> bool:
        """True if any vector is latched pending."""
        return bool(self.irr)

    def highest_pending(self) -> Optional[int]:
        """Highest-priority (numerically largest) pending vector."""
        if not self.irr:
            return None
        return max(self.irr)

    # -------------------------------------------------------------- delivery
    def can_inject(self) -> bool:
        """An interrupt may be injected if one is pending and no equal/higher
        priority interrupt is currently in service."""
        vec = self.highest_pending()
        if vec is None:
            return False
        if self.isr and max(self.isr) >= vec:
            return False
        return True

    def inject(self) -> int:
        """Deliver the highest pending vector: IRR -> ISR."""
        if not self.can_inject():
            raise HypervisorError(f"{self.vcpu_name}: inject() with nothing injectable")
        vec = self.highest_pending()
        self.irr.discard(vec)
        self.isr.add(vec)
        return vec

    # ------------------------------------------------------------ completion
    def eoi(self) -> Optional[int]:
        """End-of-interrupt: clear the highest in-service vector."""
        self.eoi_count += 1
        if not self.isr:
            return None  # spurious EOI, harmless like real hardware
        vec = max(self.isr)
        self.isr.discard(vec)
        return vec

    def in_service(self) -> Set[int]:
        """Copy of the in-service vector set."""
        return set(self.isr)

    def reset(self) -> None:
        """Clear all interrupt state."""
        self.irr.clear()
        self.isr.clear()
