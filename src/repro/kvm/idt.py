"""Guest IDT vector allocation, Linux-style.

Linux allocates external-device vectors from a fixed range and keeps
system vectors (local timer, IPIs, spurious) at the top of the table.  ES2
exploits exactly this "strict interrupt vector allocation strategy"
(Section V-C) to distinguish device interrupts — which may be redirected —
from per-vCPU interrupts such as the timer, which must not be.
"""

from __future__ import annotations

from repro.errors import GuestError

__all__ = [
    "FIRST_DEVICE_VECTOR",
    "LAST_DEVICE_VECTOR",
    "LOCAL_TIMER_VECTOR",
    "RESCHEDULE_VECTOR",
    "SPURIOUS_VECTOR",
    "is_device_vector",
    "VectorAllocator",
]

#: Linux FIRST_EXTERNAL_VECTOR (0x20) + legacy ISA offset; device IRQs live here.
FIRST_DEVICE_VECTOR = 0x23
#: Last vector handed to devices before the system-vector block begins.
LAST_DEVICE_VECTOR = 0xEB
#: Linux LOCAL_TIMER_VECTOR — per-CPU, never a device vector.
LOCAL_TIMER_VECTOR = 0xEC
#: Linux RESCHEDULE_VECTOR (guest-internal IPI).
RESCHEDULE_VECTOR = 0xFD
#: Spurious-interrupt vector.
SPURIOUS_VECTOR = 0xFF


def is_device_vector(vector: int) -> bool:
    """ES2's device/system discrimination by vector range (Section V-C)."""
    return FIRST_DEVICE_VECTOR <= vector <= LAST_DEVICE_VECTOR


class VectorAllocator:
    """Allocates guest IDT vectors for devices, like Linux's vector domain."""

    def __init__(self) -> None:
        self._next = FIRST_DEVICE_VECTOR
        self._allocated = {}

    def allocate(self, owner: str) -> int:
        """Allocate the next free device vector for ``owner``."""
        if self._next > LAST_DEVICE_VECTOR:
            raise GuestError("guest IDT device-vector space exhausted")
        vector = self._next
        self._next += 1
        self._allocated[vector] = owner
        return vector

    def owner_of(self, vector: int) -> str:
        """Name of the device a vector was allocated to."""
        try:
            return self._allocated[vector]
        except KeyError:
            raise GuestError(f"vector {vector:#x} was never allocated") from None

    def allocated(self):
        """Copy of the vector->owner allocation map."""
        return dict(self._allocated)
