"""MSI interrupt routing — the ``kvm_set_msi_irq`` interception point.

Devices raise interrupts by signalling an MSI route (their irqfd).  The
router resolves the route to an :class:`~repro.hw.msi.MsiMessage`, lets an
installed interceptor (ES2's intelligent redirection) rewrite the
destination, validates the rewrite against the message's delivery mode, and
hands the result to the per-vCPU delivery path.

An interceptor that returns an illegal destination — a vCPU outside the
message's destination set, or any rewrite of a FIXED-mode message — is a
bug of the kind the paper warns about ("redirecting them to other vCPUs may
cause the guest OS to crash"); the router raises :class:`GuestCrash` so the
test suite can prove ES2's filtering prevents it.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import GuestCrash, HypervisorError
from repro.hw.msi import DeliveryMode, MsiMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.kvm.hypervisor import Kvm
    from repro.kvm.vm import VirtualMachine

__all__ = ["IrqRouter"]

#: An interceptor maps (vm, msg) -> replacement vCPU index or None to keep
#: the affinity destination.
Interceptor = Callable[["VirtualMachine", MsiMessage], Optional[int]]


class IrqRouter:
    """Resolves MSI routes and applies the redirection hook."""

    def __init__(self, kvm: "Kvm"):
        self.kvm = kvm
        self._interceptor: Optional[Interceptor] = None
        self.delivered = 0
        self.redirected = 0
        kvm.sim.obs.counters.register("kvm.router", self, ("delivered", "redirected"))

    def set_interceptor(self, fn: Optional[Interceptor]) -> None:
        """Install (or remove) the ``kvm_set_msi_irq`` interceptor."""
        self._interceptor = fn

    def signal(self, vm: "VirtualMachine", route: int) -> None:
        """A device signalled its irqfd: deliver the routed interrupt."""
        try:
            msg = vm.msi_routes[route]
        except KeyError:
            raise HypervisorError(f"{vm.name}: unknown MSI route {route}") from None
        self.deliver_msi(vm, msg)

    def deliver_msi(self, vm: "VirtualMachine", msg: MsiMessage) -> None:
        """Resolve, (maybe) redirect, validate and deliver an MSI message."""
        target_index = msg.dest_vcpu
        if self._interceptor is not None:
            override = self._interceptor(vm, msg)
            if override is not None and override != msg.dest_vcpu:
                self._validate_redirect(vm, msg, override)
                target_index = override
                self.redirected += 1
                sim = self.kvm.sim
                if sim.trace.enabled:
                    sim.trace.record(
                        sim.now, "irq-redirect", vm=vm.name, vector=msg.vector,
                        orig=msg.dest_vcpu, target=target_index,
                    )
        if not 0 <= target_index < vm.n_vcpus:
            raise HypervisorError(f"{vm.name}: MSI destination vCPU {target_index} out of range")
        self.delivered += 1
        sp = self.kvm.sim.obs.spans
        if sp is not None:
            sp.irq_mark(
                self.kvm.sim.now, vm.vm_id, msg.vector, "irq_route",
                redirected=(target_index != msg.dest_vcpu),
                orig=msg.dest_vcpu, target=target_index,
            )
        self.kvm.deliver_vcpu_interrupt(vm.vcpus[target_index], msg.vector)

    @staticmethod
    def _validate_redirect(vm: "VirtualMachine", msg: MsiMessage, target: int) -> None:
        if msg.mode is DeliveryMode.FIXED:
            raise GuestCrash(
                f"{vm.name}: fixed-delivery vector {msg.vector:#x} redirected to "
                f"vCPU {target}; the guest would lose or misdeliver it"
            )
        if not msg.allows(target):
            raise GuestCrash(
                f"{vm.name}: vector {msg.vector:#x} redirected outside its "
                f"destination set (vCPU {target})"
            )
