"""VM-exit reasons and per-cause statistics.

The paper reports exits in four buckets (Table I / Fig. 5): *Interrupt
Delivery* (External Interrupt exits), *Interrupt Completion* (APIC-access
exits, almost all EOI writes), *Guest's I/O Request* (I/O-instruction
exits), and *Others*.  :data:`EXIT_CATEGORY` maps fine-grained reasons onto
those buckets so experiment code reproduces the same tables.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.units import rate_per_sec

__all__ = ["ExitReason", "ExitStats", "EXIT_CATEGORY"]


class ExitReason(enum.Enum):
    """Fine-grained VM-exit causes modelled by the simulator."""

    EXTERNAL_INTERRUPT = "external-interrupt"
    APIC_ACCESS = "apic-access"
    IO_INSTRUCTION = "io-instruction"
    HLT = "hlt"
    EPT_VIOLATION = "ept-violation"
    PENDING_INTERRUPT = "pending-interrupt"


#: Paper-style reporting buckets.
EXIT_CATEGORY: Dict[ExitReason, str] = {
    ExitReason.EXTERNAL_INTERRUPT: "interrupt-delivery",
    ExitReason.APIC_ACCESS: "interrupt-completion",
    ExitReason.IO_INSTRUCTION: "io-request",
    ExitReason.HLT: "others",
    ExitReason.EPT_VIOLATION: "others",
    ExitReason.PENDING_INTERRUPT: "others",
}

CATEGORIES = ("interrupt-delivery", "interrupt-completion", "io-request", "others")


class ExitStats:
    """Per-VM (or per-vCPU) exit counters with mark-based rate reporting."""

    def __init__(self) -> None:
        self.counts: Dict[ExitReason, int] = {r: 0 for r in ExitReason}
        self._marks: Dict[str, tuple] = {}

    # ------------------------------------------------------------- recording
    def record(self, reason: ExitReason) -> None:
        """Append one record."""
        self.counts[reason] += 1

    def as_counts(self) -> Dict[str, int]:
        """Per-reason cumulative counts keyed by reason value (for registries)."""
        return {reason.value: n for reason, n in self.counts.items()}

    def reset(self) -> None:
        """Zero every counter and drop all marks (between measurement runs)."""
        self.counts = {r: 0 for r in ExitReason}
        self._marks.clear()

    @property
    def total(self) -> int:
        """Sum over all categories/causes."""
        return sum(self.counts.values())

    def by_category(self) -> Dict[str, int]:
        """Counts folded into the paper's four buckets."""
        out = {c: 0 for c in CATEGORIES}
        for reason, n in self.counts.items():
            out[EXIT_CATEGORY[reason]] += n
        return out

    # ----------------------------------------------------------------- marks
    def mark(self, name: str, t: int) -> None:
        """Snapshot all counters at time ``t`` (to exclude warm-up)."""
        self._marks[name] = (t, dict(self.counts))

    def rates_between(self, start: str, end: str) -> Dict[str, float]:
        """Per-category exits/second between two marks."""
        t0, c0 = self._marks[start]
        t1, c1 = self._marks[end]
        elapsed = t1 - t0
        out = {c: 0.0 for c in CATEGORIES}
        for reason in ExitReason:
            delta = c1[reason] - c0[reason]
            out[EXIT_CATEGORY[reason]] += rate_per_sec(delta, elapsed)
        return out

    def reason_rates_between(self, start: str, end: str) -> Dict[ExitReason, float]:
        """Per-reason exits/second between two marks."""
        t0, c0 = self._marks[start]
        t1, c1 = self._marks[end]
        elapsed = t1 - t0
        return {r: rate_per_sec(c1[r] - c0[r], elapsed) for r in ExitReason}

    def total_rate_between(self, start: str, end: str) -> float:
        """Total exits/second between two marks."""
        return sum(self.rates_between(start, end).values())

    def count_between(self, start: str, end: str, reason: Optional[ExitReason] = None) -> int:
        """Observation count between two named marks."""
        t0, c0 = self._marks[start]
        t1, c1 = self._marks[end]
        if reason is not None:
            return c1[reason] - c0[reason]
        return sum(c1[r] - c0[r] for r in ExitReason)
