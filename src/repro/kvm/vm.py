"""A virtual machine: vCPUs, devices, MSI routes, exit statistics."""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.config import FeatureSet
from repro.errors import HypervisorError
from repro.hw.msi import MsiMessage
from repro.kvm.exits import ExitStats
from repro.kvm.idt import VectorAllocator
from repro.kvm.vcpu import Vcpu

if TYPE_CHECKING:  # pragma: no cover
    from repro.kvm.hypervisor import Kvm

__all__ = ["VirtualMachine"]


class VirtualMachine:
    """One guest VM under the hypervisor."""

    def __init__(
        self,
        kvm: "Kvm",
        name: str,
        n_vcpus: int,
        features: FeatureSet,
        vcpu_pinning: Optional[List[Optional[int]]] = None,
    ):
        if n_vcpus <= 0:
            raise HypervisorError("a VM needs at least one vCPU")
        if vcpu_pinning is not None and len(vcpu_pinning) != n_vcpus:
            raise HypervisorError("vcpu_pinning length must match n_vcpus")
        self.kvm = kvm
        self.machine = kvm.machine
        #: stable hypervisor-assigned identifier.  Controller-side per-VM
        #: state must key on this, never on ``id(vm)``: CPython reuses
        #: ``id()`` after garbage collection, which would alias a dead VM's
        #: state with a freshly created one.
        self.vm_id = kvm.allocate_vm_id()
        self.name = name
        self.features = features
        self.exit_stats = ExitStats()
        self.vector_allocator = VectorAllocator()
        self.vcpus: List[Vcpu] = [
            Vcpu(self, i, pinned_core=(vcpu_pinning[i] if vcpu_pinning else None))
            for i in range(n_vcpus)
        ]
        #: MSI routing table: route id -> message (devices register here)
        self.msi_routes: Dict[int, MsiMessage] = {}
        self._next_route = 0
        self.devices: list = []
        self.guest_os = None  # installed by GuestOS

    # ---------------------------------------------------------------- wiring
    def register_msi_route(self, msg: MsiMessage) -> int:
        """Register an MSI message (a device's interrupt); returns a route id
        the device uses to raise the interrupt (its irqfd)."""
        route = self._next_route
        self._next_route += 1
        self.msi_routes[route] = msg
        return route

    def update_msi_route(self, route: int, msg: MsiMessage) -> None:
        """Replace the message stored under an existing route id."""
        if route not in self.msi_routes:
            raise HypervisorError(f"unknown MSI route {route}")
        self.msi_routes[route] = msg

    def vcpu(self, index: int) -> Vcpu:
        """The vCPU at the given index."""
        return self.vcpus[index]

    @property
    def n_vcpus(self) -> int:
        """Number of vCPUs in this VM."""
        return len(self.vcpus)

    # ------------------------------------------------------------- lifecycle
    def boot(self) -> None:
        """Start every vCPU thread (the guest must be installed first)."""
        for vcpu in self.vcpus:
            if vcpu.guest_ctx is None:
                raise HypervisorError(f"{vcpu.name}: boot without a guest context")
            self.machine.spawn(vcpu)

    # ------------------------------------------------------------ accounting
    def aggregate_tig(self) -> float:
        """VM-wide time-in-guest over all vCPUs."""
        guest = sum(v.guest_time for v in self.vcpus)
        host = sum(v.host_time for v in self.vcpus)
        if guest + host == 0:
            return 0.0
        return guest / (guest + host)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<VirtualMachine {self.name} vcpus={self.n_vcpus} {self.features.name}>"
