"""The vCPU: a host thread running the guest-execution state machine.

This is where the paper's Fig. 1 lives.  All VM exits are inline round
trips (exit transition → hypervisor handling → VM entry) inside the vCPU
thread's timeline, so time-in-guest accounting and exit-rate statistics
fall out of the same mechanism.

Interrupt-delivery channels
---------------------------
* **Baseline (emulated APIC)**: the hypervisor latches the vector in the
  emulated IRR and kicks the vCPU's core with a reschedule IPI; the IPI
  forces an External-Interrupt exit, and the vector is injected at the next
  VM entry.  The guest's EOI write traps as an APIC-access exit.
* **PI (vAPIC)**: the vector is posted into the PI descriptor; if the vCPU
  is in guest mode the notification IPI triggers a hardware PIR→vIRR sync
  and delivery *without any exit*; otherwise the bits wait for the next VM
  entry (or sched-in).  EOI is virtualized.

Physical events (IPIs, forced exits) can interrupt any guest CPU segment;
virtual interrupt *delivery* additionally respects the guest's IRQ-enable
state, which is off inside hard-IRQ handlers.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import GuestError, HypervisorError
from repro.guest.ops import GHalt, GKick, GWork
from repro.hw.lapic import IPI_KIND_KICK, IPI_KIND_PI_NOTIFY
from repro.kvm.apic_emul import EmulatedLapic
from repro.kvm.exits import ExitReason
from repro.kvm.vapic import VApicPage
from repro.sched.thread import Block, Consume, CpuMode, Thread, ThreadState

if TYPE_CHECKING:  # pragma: no cover
    from repro.kvm.vm import VirtualMachine

__all__ = ["Vcpu"]


class Vcpu(Thread):
    """One virtual CPU of a VM, scheduled by host CFS as an ordinary thread."""

    is_vcpu = True

    def __init__(self, vm: "VirtualMachine", index: int, pinned_core: Optional[int] = None):
        super().__init__(vm.machine, f"{vm.name}/vcpu{index}", pinned_core=pinned_core)
        self.vm = vm
        self.index = index
        self.kvm = vm.kvm
        self.features = vm.features
        self.cost = vm.machine.cost
        self.apic = EmulatedLapic(self.name)
        self.vapic = VApicPage(self.name)
        #: installed by the GuestOS when the VM boots
        self.guest_ctx = None
        #: logically executing guest code (between VM entry and VM exit)
        self.in_guest = False
        #: guest virtual IF: off inside hard-IRQ handlers
        self.irqs_enabled = True
        self.entries = 0
        self.interrupts_handled = 0
        self._injected_vector: Optional[int] = None
        self._forced_exit: Optional[ExitReason] = None
        self._guest_wake_pending = False
        self._in_softirq = False
        self._halted = False
        self._others_rng = self.sim.rng.stream(f"others:{self.name}")
        self._others_budget = self._sample_others_budget()
        self.sim.obs.counters.register(
            f"kvm.vm.{vm.name}.vcpu{index}", self, ("entries", "interrupts_handled")
        )

    # ------------------------------------------------------------ properties
    @property
    def in_guest_mode_now(self) -> bool:
        """Physically executing guest code on a core at this instant."""
        return self.state is ThreadState.RUNNING and self.in_guest

    # ------------------------------------------------------------- main body
    def body(self):
        """Thread behaviour (generator of CPU/scheduling requests)."""
        if self.guest_ctx is None:
            raise HypervisorError(f"{self.name}: no guest context installed")
        yield from self._vm_entry()
        while True:
            vec = self._take_vector()
            if vec is not None:
                yield from self._run_interrupt(vec)
                continue
            if self._forced_exit is not None:
                yield from self._vm_exit_entry(self._forced_exit)
                continue
            op = self.guest_ctx.next_op()
            cls = type(op)
            if cls is GWork:
                yield from self._guest_consume(op.ns)
            elif cls is GKick:
                yield from self._do_kick(op.queue)
            elif cls is GHalt:
                yield from self._halt()
            else:
                raise GuestError(f"{self.name}: unknown guest op {op!r}")

    # -------------------------------------------------------- exits / entries
    def _vm_exit(self, reason: ExitReason, payload=None):
        self.in_guest = False
        self._forced_exit = None
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "vm-exit", vcpu=self.name, reason=reason.value)
        cost = self.cost.vm_exit_transition_ns + self.kvm.exit_handle_cost(reason)
        yield Consume(cost, CpuMode.HOST)
        self.kvm.handle_exit(self, reason, payload)

    def _vm_entry(self):
        entry_cost = self.cost.vm_entry_ns
        will_inject = not self.features.pi and self.apic.can_inject()
        if will_inject:
            entry_cost += self.cost.inject_ns
        yield Consume(entry_cost, CpuMode.HOST)
        if self.features.pi:
            self.vapic.sync_pir_to_virr()
        elif self.apic.can_inject() and self._injected_vector is None:
            self._injected_vector = self.apic.inject()
        self.entries += 1
        self.in_guest = True

    def _vm_exit_entry(self, reason: ExitReason, payload=None):
        """A full inline exit → handle → entry round trip."""
        yield from self._vm_exit(reason, payload)
        yield from self._vm_entry()

    # ------------------------------------------------------- guest execution
    def _guest_consume(self, ns: int):
        """Burn guest CPU time; service interrupts/forced exits as they land."""
        remaining = ns
        while remaining > 0:
            consumed = yield Consume(remaining, CpuMode.GUEST, interruptible=True)
            remaining -= consumed
            self._others_budget -= consumed
            while self._others_budget <= 0:
                self._others_budget += self._sample_others_budget()
                yield from self._vm_exit_entry(self._sample_others_reason())
            if self._forced_exit is not None:
                yield from self._vm_exit_entry(self._forced_exit)
            vec = self._take_vector()
            if vec is not None:
                yield from self._run_interrupt(vec)

    def _do_kick(self, queue):
        """virtqueue_kick: the notify write, plus an exit if not suppressed."""
        yield from self._guest_consume(self.cost.guest_kick_ns)
        if queue.guest_should_kick():
            queue.note_kick(exited=True)
            yield from self._vm_exit_entry(ExitReason.IO_INSTRUCTION, payload=queue)
        else:
            queue.note_kick(exited=False)

    def _halt(self):
        yield from self._vm_exit(ExitReason.HLT)
        self._halted = True
        while not self._wake_condition():
            yield Block()
        self._halted = False
        yield from self._vm_entry()

    def _wake_condition(self) -> bool:
        if self._guest_wake_pending:
            self._guest_wake_pending = False
            return True
        if self._forced_exit is not None:
            return True
        if self.features.pi:
            return self.vapic.any_pending()
        return self.apic.has_pending() or self._injected_vector is not None

    # ------------------------------------------------------ interrupt window
    def _take_vector(self) -> Optional[int]:
        if not self.irqs_enabled:
            return None
        if self.features.pi:
            if self.vapic.has_deliverable():
                return self.vapic.deliver()
            return None
        vec, self._injected_vector = self._injected_vector, None
        return vec

    def _run_interrupt(self, vector: int):
        """Hard-IRQ handler + EOI + any raised softirq work."""
        self.interrupts_handled += 1
        if self.sim.trace.enabled:
            self.sim.trace.record(self.sim.now, "irq-handled", vcpu=self.name, vector=vector)
        sp = self.sim.obs.spans
        if sp is not None:
            # The gap since irq_route is the injection wait: TIG while the
            # target vCPU was descheduled, plus the entry/IPI machinery.
            sp.irq_mark(self.sim.now, self.vm.vm_id, vector, "irq_inject", vcpu=self.index)
        self.irqs_enabled = False
        yield from self._guest_consume(self.cost.guest_irq_entry_ns)
        yield from self._run_ops(self.guest_ctx.irq_handler_ops(vector))
        # End of interrupt: virtualized under PI, an APIC-access trap without.
        yield from self._guest_consume(self.cost.guest_eoi_ns)
        if self.features.pi:
            self.vapic.eoi()
        else:
            yield from self._vm_exit_entry(ExitReason.APIC_ACCESS)
        self.irqs_enabled = True
        if not self._in_softirq:
            self._in_softirq = True
            try:
                while True:
                    ops = self.guest_ctx.take_softirq_ops()
                    if ops is None:
                        break
                    yield from self._run_ops(ops)
            finally:
                self._in_softirq = False

    def _run_ops(self, ops):
        for op in ops:
            cls = type(op)
            if cls is GWork:
                yield from self._guest_consume(op.ns)
            elif cls is GKick:
                yield from self._do_kick(op.queue)
            else:
                raise GuestError(f"{self.name}: illegal op in IRQ context: {op!r}")

    # ------------------------------------------------------- host-side hooks
    def on_host_ipi(self, vector: int, kind: str) -> None:
        """A physical IPI landed on the core this vCPU occupies."""
        if not self.in_guest:
            return  # in root mode: the host consumes the IPI, no exit
        if kind == IPI_KIND_PI_NOTIFY:
            # Hardware processes the PI descriptor of the *current* vCPU.
            self.vapic.sync_pir_to_virr()
            self.poke()
        elif kind == IPI_KIND_KICK:
            self._forced_exit = ExitReason.EXTERNAL_INTERRUPT
            self.poke()

    def on_sched_in(self, core) -> None:
        """KVM ``vcpu_load``: sync interrupt state deferred while descheduled."""
        if not self.in_guest:
            return
        if self.features.pi:
            if self.vapic.pi_desc.has_pending():
                self.vapic.sync_pir_to_virr()
                self._poke_pending = True
        else:
            if self.apic.can_inject() and self._injected_vector is None:
                # Real KVM injects after the exit caused by the preemption
                # itself; model it as a delivery exit at resumption.
                if self._forced_exit is None:
                    self._forced_exit = ExitReason.EXTERNAL_INTERRUPT
                self._poke_pending = True

    def kick_guest(self) -> None:
        """Guest-internal wakeup (a task became runnable): leave HLT."""
        self._guest_wake_pending = True
        if self._halted:
            self.wake()

    # ---------------------------------------------------------------- others
    def _sample_others_budget(self) -> int:
        mean = self.machine.cost.others_exit_mean_interval_ns
        if self.features.pi:
            mean = int(mean / self.machine.cost.others_pi_factor)
        return max(1, int(self._others_rng.expovariate(1.0 / mean)))

    def _sample_others_reason(self) -> ExitReason:
        if self._others_rng.random() < 0.7:
            return ExitReason.EPT_VIOLATION
        return ExitReason.PENDING_INTERRUPT

    # ------------------------------------------------------------ accounting
    @property
    def guest_time(self) -> int:
        """Total guest-mode nanoseconds of this vCPU."""
        return self.mode_exec[CpuMode.GUEST]

    @property
    def host_time(self) -> int:
        """Total host-mode (exit handling) nanoseconds of this vCPU."""
        return self.mode_exec[CpuMode.HOST]

    def time_in_guest(self) -> float:
        """TIG: guest time over guest+host time (Section VI-C)."""
        denom = self.guest_time + self.host_time
        if denom == 0:
            return 0.0
        return self.guest_time / denom
