"""The hypervisor: exit handling, interrupt delivery, guest timers."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import FeatureSet
from repro.errors import HypervisorError
from repro.hw.lapic import IPI_KIND_KICK, IPI_KIND_PI_NOTIFY, KICK_VECTOR, POSTED_INTR_VECTOR
from repro.hw.machine import Machine
from repro.kvm.exits import ExitReason, ExitStats
from repro.kvm.idt import LOCAL_TIMER_VECTOR
from repro.kvm.routing import IrqRouter
from repro.kvm.vcpu import Vcpu
from repro.kvm.vm import VirtualMachine
from repro.units import MS

__all__ = ["Kvm"]


class Kvm:
    """The KVM model: owns VMs and the virtual-interrupt delivery paths."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.sim = machine.sim
        self.cost = machine.cost
        self.vms: List[VirtualMachine] = []
        self.router = IrqRouter(self)
        self.global_exit_stats = ExitStats()
        self.sim.obs.counters.register_fn(
            "kvm.exits", self.global_exit_stats.as_counts, reset_fn=self.global_exit_stats.reset
        )
        self._next_vm_id = 0
        self._teardown_listeners: List = []
        self._exit_cost: Dict[ExitReason, int] = {
            ExitReason.IO_INSTRUCTION: self.cost.exit_handle_io_ns,
            ExitReason.EXTERNAL_INTERRUPT: self.cost.exit_handle_ext_int_ns,
            ExitReason.APIC_ACCESS: self.cost.exit_handle_apic_ns,
            ExitReason.HLT: self.cost.exit_handle_hlt_ns,
            ExitReason.EPT_VIOLATION: self.cost.exit_handle_other_ns,
            ExitReason.PENDING_INTERRUPT: self.cost.exit_handle_other_ns,
        }

    # -------------------------------------------------------------- VM setup
    def create_vm(
        self,
        name: str,
        n_vcpus: int,
        features: FeatureSet,
        vcpu_pinning: Optional[List[Optional[int]]] = None,
    ) -> VirtualMachine:
        """Create and register a VM under this hypervisor."""
        vm = VirtualMachine(self, name, n_vcpus, features, vcpu_pinning)
        self.vms.append(vm)
        self.sim.obs.counters.register_fn(
            f"kvm.vm.{name}.exits", vm.exit_stats.as_counts, reset_fn=vm.exit_stats.reset
        )
        return vm

    def allocate_vm_id(self) -> int:
        """Hand out the next stable VM identifier (never reused)."""
        vm_id = self._next_vm_id
        self._next_vm_id += 1
        return vm_id

    def add_teardown_listener(self, fn) -> None:
        """``fn(vm)`` fires when a VM is destroyed (state-cleanup hook)."""
        self._teardown_listeners.append(fn)

    def destroy_vm(self, vm: VirtualMachine) -> None:
        """Tear a VM down: unregister it and let listeners drop per-VM state."""
        if vm in self.vms:
            self.vms.remove(vm)
        self.sim.obs.counters.unregister_prefix(f"kvm.vm.{vm.name}.")
        for fn in self._teardown_listeners:
            fn(vm)

    # ---------------------------------------------------------- exit handling
    def exit_handle_cost(self, reason: ExitReason) -> int:
        """Hypervisor software cost of handling one exit cause."""
        return self._exit_cost[reason]

    def handle_exit(self, vcpu: Vcpu, reason: ExitReason, payload=None) -> None:
        """Hypervisor-side effect of an exit (the cost was already charged)."""
        vcpu.vm.exit_stats.record(reason)
        self.global_exit_stats.record(reason)
        if reason is ExitReason.IO_INSTRUCTION:
            if payload is None:
                raise HypervisorError("I/O-instruction exit without a target queue")
            payload.backend_notified()
        elif reason is ExitReason.APIC_ACCESS:
            # Almost all APIC-access exits are EOI writes (Section VI-C).
            vcpu.apic.eoi()
        # External-interrupt, HLT and 'others' exits have no modelled side
        # effect beyond their handling cost.

    # ------------------------------------------------------ interrupt delivery
    def deliver_vcpu_interrupt(self, vcpu: Vcpu, vector: int) -> None:
        """Deliver a virtual interrupt to a specific vCPU.

        This is the per-vCPU half of delivery, shared by the MSI router and
        the LAPIC timer: the PI posting path when the VM runs with posted
        interrupts, or the emulated-APIC kick/inject path otherwise.
        """
        if self.sim.trace.enabled:
            self.sim.trace.record(
                self.sim.now,
                "irq-deliver",
                vcpu=vcpu.name,
                vector=vector,
                pi=vcpu.features.pi,
                running=vcpu.in_guest_mode_now,
            )
        if vcpu.features.pi:
            need_notify = vcpu.vapic.pi_desc.post(vector)
            if vcpu.in_guest_mode_now:
                if need_notify:
                    self.machine.post_ipi(vcpu.core, POSTED_INTR_VECTOR, IPI_KIND_PI_NOTIFY)
            elif vcpu._halted:
                vcpu.wake()
            # Otherwise: PIR bits wait for the next VM entry / sched-in — the
            # scheduling-latency gap ES2's redirection attacks.
        else:
            vcpu.apic.set_irq(vector)
            if vcpu.in_guest_mode_now:
                self.machine.post_ipi(vcpu.core, KICK_VECTOR, IPI_KIND_KICK)
            elif vcpu._halted:
                vcpu.wake()

    # ------------------------------------------------------------ guest timer
    def start_guest_timer(self, vm: VirtualMachine, period_ns: int = 4 * MS) -> None:
        """Arm the emulated per-vCPU LAPIC timer (Linux guest HZ=250).

        Timer interrupts are per-vCPU by construction and are delivered
        directly — never through MSI routing — so ES2's redirection cannot
        legally touch them (Section V-C).
        """
        for vcpu in vm.vcpus:
            # Stagger phases so sibling vCPUs don't tick in lockstep.
            phase = (period_ns * (vcpu.index + 1)) // (vm.n_vcpus + 1)
            self.sim.schedule(phase, self._timer_fire, vcpu, period_ns)

    def _timer_fire(self, vcpu: Vcpu, period_ns: int) -> None:
        from repro.sched.thread import ThreadState

        if vcpu.guest_ctx is not None and vcpu.state is not ThreadState.NEW:
            self.deliver_vcpu_interrupt(vcpu, LOCAL_TIMER_VECTOR)
        self.sim.schedule(period_ns, self._timer_fire, vcpu, period_ns)
