"""Structured trace recording.

Tracing is off by default (the :class:`NullTracer` costs one attribute check
per potential record).  Tests and debugging sessions install a
:class:`TraceRecorder`, optionally filtered by event kind, and assert on the
recorded sequence — e.g. that a posted interrupt never produced a VM exit.

For long runs and category-level filtering, prefer the ring-buffered
:class:`repro.obs.TraceBus` (``sim.trace_bus(categories=["exit"])``): the
same ``record`` protocol, bounded memory, and per-subsystem categories.
This module keeps the unbounded append-only recorder because tests assert
on *complete* sequences.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["TraceRecorder", "NullTracer"]


class NullTracer:
    """No-op tracer; `enabled` is False so hot paths can skip formatting."""

    enabled = False

    def record(self, t: int, kind: str, **fields: Any) -> None:  # pragma: no cover
        """Append one record."""
        pass

    def __len__(self) -> int:
        return 0


class TraceRecorder:
    """Append-only list of ``(time, kind, fields)`` records."""

    enabled = True

    def __init__(self, kinds: Optional[Iterable[str]] = None, capacity: int = 1_000_000):
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.capacity = capacity
        self.records: List[Tuple[int, str, Dict[str, Any]]] = []
        self.dropped = 0

    def record(self, t: int, kind: str, **fields: Any) -> None:
        """Append one record."""
        if self.kinds is not None and kind not in self.kinds:
            return
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append((t, kind, fields))

    def __len__(self) -> int:
        return len(self.records)

    def of_kind(self, kind: str) -> List[Tuple[int, Dict[str, Any]]]:
        """All records of one kind as ``(time, fields)`` pairs."""
        return [(t, f) for (t, k, f) in self.records if k == kind]

    def kinds_seen(self):
        """Sorted set of record kinds captured so far."""
        return sorted({k for (_, k, _) in self.records})

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()
        self.dropped = 0
