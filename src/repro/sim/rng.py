"""Named, seeded random-number streams.

Each simulator component draws from its own stream (e.g. ``"memaslap"``,
``"others-exits"``) derived deterministically from the master seed and the
stream name.  Adding a new consumer of randomness therefore never perturbs
the draws seen by existing components — a property the regression tests rely
on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory and cache for named :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def names(self):
        """Names of all streams created so far (sorted, for reporting)."""
        return sorted(self._streams)
