"""Online statistics used by the measurement layer.

These are deliberately dependency-light (no numpy in the hot path): the
simulator records per-event observations at high rates, so each ``add`` must
be a handful of arithmetic operations.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["RunningStat", "Histogram", "TimeWeightedMean", "IntervalRate"]


class RunningStat:
    """Welford online mean/variance with min/max tracking."""

    __slots__ = ("count", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.total = 0.0

    def add(self, x: float) -> None:
        """Fold one observation into the statistic."""
        self.count += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if self.min is None or x < self.min:
            self.min = x
        if self.max is None or x > self.max:
            self.max = x

    def extend(self, xs: Iterable[float]) -> None:
        """Record a batch of observations."""
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations so far."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0 for fewer than two observations."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        """Sample standard deviation of the observations so far."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStat") -> None:
        """Fold another statistic into this one (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min, self.max, self.total = other.min, other.max, other.total
            return
        n1, n2 = self.count, other.count
        delta = other._mean - self._mean
        n = n1 + n2
        self._mean += delta * n2 / n
        self._m2 += other._m2 + delta * delta * n1 * n2 / n
        self.count = n
        self.total += other.total
        self.min = min(self.min, other.min)  # type: ignore[type-var]
        self.max = max(self.max, other.max)  # type: ignore[type-var]

    def __repr__(self) -> str:  # pragma: no cover
        return f"RunningStat(n={self.count}, mean={self.mean:.3g}, sd={self.stdev:.3g})"


class Histogram:
    """Sample-retaining histogram with exact percentiles.

    Retains raw samples up to ``max_samples`` then switches to reservoir
    sampling, so memory stays bounded for long runs while percentiles stay
    statistically representative.
    """

    def __init__(self, max_samples: int = 100_000, rng=None) -> None:
        self._samples: List[float] = []
        self._max = max_samples
        self._seen = 0
        self._rng = rng
        self.stat = RunningStat()

    def add(self, x: float) -> None:
        """Record one observation."""
        self.stat.add(x)
        self._seen += 1
        if len(self._samples) < self._max:
            self._samples.append(x)
        else:
            # Reservoir sampling keeps a uniform subsample.
            if self._rng is None:
                import random

                self._rng = random.Random(0xE52)
            j = self._rng.randrange(self._seen)
            if j < self._max:
                self._samples[j] = x

    @property
    def count(self) -> int:
        """Number of observations recorded so far."""
        return self._seen

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations so far."""
        return self.stat.mean

    @property
    def max(self) -> Optional[float]:
        """Largest observation so far (None when empty)."""
        return self.stat.max

    @property
    def min(self) -> Optional[float]:
        """Smallest observation so far (None when empty)."""
        return self.stat.min

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile ``p`` in [0, 100] of the retained samples."""
        if not self._samples:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        xs = sorted(self._samples)
        if len(xs) == 1:
            return xs[0]
        rank = (p / 100.0) * (len(xs) - 1)
        lo = int(rank)
        frac = rank - lo
        if lo + 1 >= len(xs):
            return xs[-1]
        return xs[lo] * (1 - frac) + xs[lo + 1] * frac

    def samples(self) -> Sequence[float]:
        """The retained (possibly subsampled) raw observations."""
        return tuple(self._samples)


class TimeWeightedMean:
    """Mean of a piecewise-constant signal, weighted by how long it held each value."""

    __slots__ = ("_last_t", "_last_v", "_area", "_elapsed")

    def __init__(self, t0: int = 0, v0: float = 0.0) -> None:
        self._last_t = t0
        self._last_v = v0
        self._area = 0.0
        self._elapsed = 0

    def update(self, t: int, v: float) -> None:
        """Signal changed to ``v`` at time ``t``."""
        if t < self._last_t:
            raise ValueError("time went backwards")
        dt = t - self._last_t
        self._area += self._last_v * dt
        self._elapsed += dt
        self._last_t = t
        self._last_v = v

    def mean(self, t: Optional[int] = None) -> float:
        """Time-weighted mean up to ``t`` (defaults to the last update)."""
        area, elapsed = self._area, self._elapsed
        if t is not None:
            if t < self._last_t:
                raise ValueError("time went backwards")
            area += self._last_v * (t - self._last_t)
            elapsed += t - self._last_t
        return area / elapsed if elapsed else 0.0


class IntervalRate:
    """Event counter that can report per-second rates over sub-intervals.

    Records cumulative counts at named marks so experiments can exclude
    warm-up, matching how the paper reports steady-state exit rates.
    """

    def __init__(self) -> None:
        self.count = 0
        self._marks: Dict[str, tuple] = {}
        self._times: List[int] = []

    def add(self, n: int = 1) -> None:
        """Record one observation."""
        self.count += n

    def mark(self, name: str, t: int) -> None:
        """Snapshot the cumulative count at time ``t`` under ``name``."""
        self._marks[name] = (t, self.count)

    def rate_between(self, start_mark: str, end_mark: str) -> float:
        """Events/second between two marks."""
        t0, c0 = self._marks[start_mark]
        t1, c1 = self._marks[end_mark]
        if t1 <= t0:
            return 0.0
        return (c1 - c0) * 1e9 / (t1 - t0)

    def count_between(self, start_mark: str, end_mark: str) -> int:
        """Observation count between two named marks."""
        _, c0 = self._marks[start_mark]
        _, c1 = self._marks[end_mark]
        return c1 - c0


def percentile_of_sorted(xs: Sequence[float], p: float) -> float:
    """Percentile of an already-sorted sequence (linear interpolation)."""
    if not xs:
        return 0.0
    if len(xs) == 1:
        return xs[0]
    rank = (p / 100.0) * (len(xs) - 1)
    lo = int(rank)
    frac = rank - lo
    if lo + 1 >= len(xs):
        return xs[-1]
    return xs[lo] * (1 - frac) + xs[lo + 1] * frac
