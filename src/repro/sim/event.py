"""Event objects and the pending-event priority queue.

Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
increasing insertion counter; two events scheduled for the same instant fire
in the order they were scheduled.  Cancellation is O(1): a cancelled event
stays in the heap but is skipped when popped (lazy deletion), which is the
standard approach for simulators with frequent cancellation (we cancel CPU
segment-completion events on every preemption and interrupt poke).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (integer ns) at which the event fires.
    fn:
        Callback invoked as ``fn(*args)`` when the event fires.
    """

    __slots__ = ("time", "seq", "fn", "args", "_cancelled", "_fired")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self._cancelled = False
        self._fired = False

    # Heap ordering -------------------------------------------------------
    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    # State ---------------------------------------------------------------
    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the callback has been invoked."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and may still fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; a no-op after firing."""
        if not self._fired:
            self._cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"<Event t={self.time} seq={self.seq} {state} fn={getattr(self.fn, '__qualname__', self.fn)!r}>"


class EventQueue:
    """Priority queue of :class:`Event` with lazy cancellation."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled, unfired) events."""
        return self._live

    def push(self, time: int, fn: Callable[..., Any], args: tuple = ()) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time`` and return the event."""
        ev = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def note_cancelled(self) -> None:
        """Bookkeeping hook: caller cancelled one live event."""
        if self._live <= 0:
            raise SimulationError("cancelled more events than were live")
        self._live -= 1

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is empty."""
        self._drop_dead()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or None if empty."""
        self._drop_dead()
        if not self._heap:
            return None
        ev = heapq.heappop(self._heap)
        ev._fired = True
        self._live -= 1
        return ev

    def _drop_dead(self) -> None:
        heap = self._heap
        while heap and heap[0]._cancelled:
            heapq.heappop(heap)

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
