"""Event objects and the pending-event priority queue.

Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
increasing insertion counter; two events scheduled for the same instant fire
in the order they were scheduled.  Cancellation is O(1): a cancelled event
stays in the heap but is skipped when popped (lazy deletion), which is the
standard approach for simulators with frequent cancellation (we cancel CPU
segment-completion events on every preemption and interrupt poke).

Hot-path layout
---------------
The heap stores ``(time, seq, event)`` tuples rather than bare events, so
``heapq`` sifts compare plain ints and never call back into Python-level
``Event.__lt__`` (``seq`` is unique, so the tie-break never reaches the
event itself).  ``call_soon``-style events go through a FIFO side lane
(:meth:`EventQueue.push_soon`) that skips the heap entirely: the simulator
clock never moves backwards, so those events are already in ``(time, seq)``
order and a deque append/popleft replaces two O(log n) heap operations.
``pop``/``peek_time`` merge the two lanes by comparing their heads, which
preserves the exact global firing order of a single heap.

Cancelled events are dropped lazily from the top, and additionally pruned
in batches: once enough dead entries accumulate relative to the structure
size, the heap is rebuilt without them so sift costs do not grow with the
cancellation backlog.

Object pooling
--------------
Fired events can be returned to a per-queue free list (:meth:`EventQueue.
recycle`) and reused by later pushes, which removes one allocation per
event on the run-loop hot path.  Reuse resets every field — time, seq,
callback, and the ``cancelled``/``fired`` flags — so a recycled event is
indistinguishable from a fresh one (``repr`` included).  Recycling is only
legal when the caller holds the *sole* reference: the simulator run loop
checks ``sys.getrefcount`` before recycling, so any event handle kept by
user code (for ``cancel()``, assertions, ...) keeps its object untouched.
Cancelled events are never recycled — their handles outlive the queue's
interest in them by design.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]

#: Batched pruning kicks in only past this many dead entries (small queues
#: are cheap to skip lazily) and only when dead entries dominate the heap.
_PRUNE_THRESHOLD = 64

#: Upper bound on the recycled-Event free list per queue.  The steady-state
#: working set is tiny (one in-flight event per core/timer source); the cap
#: only matters after a burst, where unbounded growth would pin memory.
_FREE_LIST_CAP = 512


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (integer ns) at which the event fires.
    fn:
        Callback invoked as ``fn(*args)`` when the event fires.
    """

    __slots__ = ("time", "seq", "fn", "args", "_cancelled", "_fired", "_queue")

    def __init__(
        self,
        time: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        queue: Optional["EventQueue"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self._cancelled = False
        self._fired = False
        self._queue = queue

    # Heap ordering (kept for API compatibility; the queue itself compares
    # (time, seq) tuples and never calls this). --------------------------
    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    # State ---------------------------------------------------------------
    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the callback has been invoked."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and may still fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; a no-op after firing.

        Live-count bookkeeping happens here, so cancelling through the event
        directly and through :meth:`Simulator.cancel` stay consistent.
        """
        if self._fired or self._cancelled:
            return
        self._cancelled = True
        queue = self._queue
        if queue is not None:
            queue._note_cancelled(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"<Event t={self.time} seq={self.seq} {state} fn={getattr(self.fn, '__qualname__', self.fn)!r}>"


class EventQueue:
    """Priority queue of :class:`Event` with lazy cancellation."""

    __slots__ = ("_heap", "_fifo", "_seq", "_live", "_dead", "_free")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._fifo: Deque[Event] = deque()
        self._seq = 0
        self._live = 0
        self._dead = 0
        self._free: List[Event] = []

    def __len__(self) -> int:
        """Number of *live* (non-cancelled, unfired) events."""
        return self._live

    def free_list_size(self) -> int:
        """Recycled events currently pooled for reuse (observability gauge)."""
        return len(self._free)

    def _obtain(self, time: int, seq: int, fn: Callable[..., Any], args: tuple) -> Event:
        """A fresh-looking event: from the free list if possible, else new."""
        free = self._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev._cancelled = False
            ev._fired = False
            ev._queue = self
            return ev
        return Event(time, seq, fn, args, self)

    def push(self, time: int, fn: Callable[..., Any], args: tuple = ()) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time`` and return the event."""
        seq = self._seq
        self._seq = seq + 1
        ev = self._obtain(time, seq, fn, args)
        heappush(self._heap, (time, seq, ev))
        self._live += 1
        return ev

    def push_soon(self, time: int, fn: Callable[..., Any], args: tuple = ()) -> Event:
        """FIFO fast lane for events at the current instant (``call_soon``).

        ``time`` must be the current simulation time: successive calls then
        carry non-decreasing ``(time, seq)`` keys, so the lane is sorted by
        construction and the heap can be skipped.
        """
        seq = self._seq
        self._seq = seq + 1
        ev = self._obtain(time, seq, fn, args)
        self._fifo.append(ev)
        self._live += 1
        return ev

    def recycle(self, ev: Event) -> None:
        """Return a *fired* event to the free list for reuse by a later push.

        The caller must hold the only remaining reference (the run loop
        verifies this with ``sys.getrefcount``): a recycled event's identity
        is handed to a future push, so an external holder would observe its
        handle mutating into an unrelated event.  Idempotent — an event that
        was already recycled (``_queue`` cleared) or never fired is ignored.
        """
        if not ev._fired or ev._queue is None:
            return
        ev._queue = None
        ev.fn = None  # type: ignore[assignment]  # drop callback/arg refs eagerly
        ev.args = ()
        free = self._free
        if len(free) < _FREE_LIST_CAP:
            free.append(ev)

    # ---------------------------------------------------------- bookkeeping
    def _note_cancelled(self, ev: Event) -> None:
        if self._live <= 0:
            raise SimulationError("cancelled more events than were live")
        self._live -= 1
        self._dead += 1
        if self._dead > _PRUNE_THRESHOLD and self._dead * 2 > len(self._heap) + len(self._fifo):
            self._prune()

    def note_cancelled(self) -> None:
        """Deprecated bookkeeping hook, kept as a no-op for compatibility.

        :meth:`Event.cancel` now updates the live count itself, so both the
        ``Simulator.cancel`` path and direct ``event.cancel()`` calls stay
        consistent without a separate caller-side notification.
        """

    def _prune(self) -> None:
        """Batched removal of cancelled entries (keeps sift costs bounded)."""
        self._heap = [entry for entry in self._heap if not entry[2]._cancelled]
        heapify(self._heap)
        if self._fifo:
            self._fifo = deque(ev for ev in self._fifo if not ev._cancelled)
        self._dead = 0

    # ----------------------------------------------------------- retrieval
    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is empty."""
        heap, fifo = self._heap, self._fifo
        # Dead-entry skip inlined (this runs once per fusion attempt).
        while heap and heap[0][2]._cancelled:
            heappop(heap)
            self._dead -= 1
        while fifo and fifo[0]._cancelled:
            fifo.popleft()
            self._dead -= 1
        if heap:
            if fifo and fifo[0].time <= heap[0][0]:
                return fifo[0].time
            return heap[0][0]
        if fifo:
            return fifo[0].time
        return None

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or None if empty."""
        self._drop_dead()
        heap, fifo = self._heap, self._fifo
        if heap:
            head = heap[0]
            if fifo and (fifo[0].time < head[0]
                         or (fifo[0].time == head[0] and fifo[0].seq < head[1])):
                ev = fifo.popleft()
            else:
                ev = heappop(heap)[2]
        elif fifo:
            ev = fifo.popleft()
        else:
            return None
        ev._fired = True
        self._live -= 1
        return ev

    def pop_until(self, limit: int) -> Optional[Event]:
        """Pop the next live event if its time is ``<= limit``, else None.

        Fuses ``peek_time`` and ``pop`` for the run loop, so the dead-entry
        skip and the two-lane head comparison happen once per event.
        """
        heap, fifo = self._heap, self._fifo
        while heap and heap[0][2]._cancelled:
            heappop(heap)
            self._dead -= 1
        while fifo and fifo[0]._cancelled:
            fifo.popleft()
            self._dead -= 1
        if heap:
            head = heap[0]
            if fifo and (fifo[0].time < head[0]
                         or (fifo[0].time == head[0] and fifo[0].seq < head[1])):
                if fifo[0].time > limit:
                    return None
                ev = fifo.popleft()
            else:
                if head[0] > limit:
                    return None
                ev = heappop(heap)[2]
        elif fifo:
            if fifo[0].time > limit:
                return None
            ev = fifo.popleft()
        else:
            return None
        ev._fired = True
        self._live -= 1
        return ev

    def _drop_dead(self) -> None:
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heappop(heap)
            self._dead -= 1
        fifo = self._fifo
        while fifo and fifo[0]._cancelled:
            fifo.popleft()
            self._dead -= 1

    def clear(self) -> None:
        """Drop every pending event."""
        for _, _, ev in self._heap:
            ev._queue = None
        for ev in self._fifo:
            ev._queue = None
        self._heap.clear()
        self._fifo.clear()
        self._live = 0
        self._dead = 0
