"""The simulator clock and run loop."""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError
from repro.obs import EventProfiler, Observability, SpanRecorder, TraceBus
from repro.sim.event import Event, EventQueue
from repro.sim.rng import RngRegistry
from repro.sim.trace import NullTracer, TraceRecorder

__all__ = ["Simulator"]


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all named RNG streams (see :class:`RngRegistry`).
    trace:
        Optional :class:`TraceRecorder`; defaults to a no-op tracer.

    The clock is integer nanoseconds, starting at 0.  Events scheduled for
    the same instant fire in scheduling order, which makes runs reproducible
    from ``(code, seed)`` alone.
    """

    def __init__(self, seed: int = 0, trace: Optional[TraceRecorder] = None) -> None:
        self.now: int = 0
        self.queue = EventQueue()
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else NullTracer()
        self.obs = Observability()
        self._profiler: Optional[EventProfiler] = None
        self._running = False
        self._events_fired = 0

    # ----------------------------------------------------------------- API
    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (statistics/debugging)."""
        return self._events_fired

    # -------------------------------------------------------- observability
    def trace_bus(
        self,
        categories: Optional[Iterable[str]] = None,
        kinds: Optional[Iterable[str]] = None,
        capacity: int = 65536,
    ) -> TraceBus:
        """Install (and return) a :class:`~repro.obs.TraceBus` as the tracer."""
        self.trace = TraceBus(categories=categories, kinds=kinds, capacity=capacity)
        return self.trace

    def enable_spans(
        self,
        sample_every: int = 1,
        capacity: int = 262144,
        categories: Optional[Iterable[str]] = None,
    ) -> SpanRecorder:
        """Install per-request event-path span recording (``sim.obs.spans``).

        Installs a :class:`~repro.obs.TraceBus` as the tracer if one is not
        already installed (an existing bus is kept, filters and all, so
        callers can combine spans with their own category selection).  The
        recorder is an observer only: fixed-seed results are byte-identical
        with spans enabled or disabled.
        """
        if not isinstance(self.trace, TraceBus):
            self.trace = TraceBus(categories=categories, capacity=capacity)
        if self.obs.spans is None:
            self.obs.spans = SpanRecorder(self.trace, sample_every=sample_every)
        return self.obs.spans

    def disable_spans(self) -> None:
        """Stop span recording (retained marks stay on the trace bus)."""
        self.obs.spans = None

    def enable_profiling(self) -> EventProfiler:
        """Install per-event-type wall/sim-time profiling on the run loop."""
        if self._profiler is None:
            self._profiler = self.obs.profiler = EventProfiler()
        return self._profiler

    def disable_profiling(self) -> None:
        """Remove the run-loop profiler (profile data is discarded)."""
        self._profiler = self.obs.profiler = None

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now."""
        if delay <= 0:
            if delay < 0:
                raise SimulationError(f"cannot schedule into the past (delay={delay})")
            # Zero-delay events take the FIFO fast lane: same (time, seq)
            # firing order as a heap push at the current instant, no sift.
            return self.queue.push_soon(self.now, fn, args)
        return self.queue.push(self.now + int(delay), fn, args)

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time`` ns."""
        if time <= self.now:
            if time < self.now:
                raise SimulationError(f"cannot schedule into the past (t={time} < now={self.now})")
            return self.queue.push_soon(self.now, fn, args)
        return self.queue.push(int(time), fn, args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current instant, after pending same-time events."""
        return self.queue.push_soon(self.now, fn, args)

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event.  Returns True if it was still pending."""
        if event.pending:
            event.cancel()
            return True
        return False

    # ------------------------------------------------------------ run loop
    def step(self) -> bool:
        """Execute the next event.  Returns False when no events remain."""
        ev = self.queue.pop()
        if ev is None:
            return False
        if ev.time < self.now:
            raise SimulationError("event heap yielded an event in the past")
        self.now = ev.time
        self._events_fired += 1
        prof = self._profiler
        if prof is None:
            ev.fn(*ev.args)
        else:
            t0 = perf_counter_ns()
            ev.fn(*ev.args)
            prof.record(ev.fn, perf_counter_ns() - t0, self.now)
        return True

    def run_until(self, time: int) -> None:
        """Run events up to and including absolute time ``time``.

        The clock is left at ``time`` even if the queue drains earlier.
        """
        if time < self.now:
            raise SimulationError(f"run_until({time}) is in the past (now={self.now})")
        self._running = True
        pop_until = self.queue.pop_until
        prof = self._profiler
        fired = 0
        try:
            if prof is None:
                while True:
                    ev = pop_until(time)
                    if ev is None:
                        break
                    self.now = ev.time
                    fired += 1
                    ev.fn(*ev.args)
            else:
                while True:
                    ev = pop_until(time)
                    if ev is None:
                        break
                    self.now = ev.time
                    fired += 1
                    t0 = perf_counter_ns()
                    ev.fn(*ev.args)
                    prof.record(ev.fn, perf_counter_ns() - t0, self.now)
        finally:
            self._events_fired += fired
            self._running = False
        self.now = max(self.now, time)

    def run_for(self, duration: int) -> None:
        """Run events for ``duration`` ns of simulated time."""
        self.run_until(self.now + int(duration))

    def run_until_empty(self, max_events: int = 10_000_000) -> None:
        """Drain the event queue (bounded by ``max_events`` as a safety net)."""
        self._running = True
        try:
            for _ in range(max_events):
                if not self.step():
                    return
        finally:
            self._running = False
        # The budget may be spent by exactly the event that drained the
        # queue; only an actually non-empty queue is a runaway simulation.
        if len(self.queue):
            raise SimulationError(f"event queue did not drain within {max_events} events")
