"""The simulator clock and run loop."""

from __future__ import annotations

import os
from sys import getrefcount
from time import perf_counter_ns
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError
from repro.obs import (
    EventProfiler,
    InvariantWatchdog,
    Observability,
    SpanRecorder,
    TimelineSampler,
    TraceBus,
)
from repro.sim.event import Event, EventQueue
from repro.sim.rng import RngRegistry
from repro.sim.trace import NullTracer, TraceRecorder

__all__ = ["Simulator", "CrossShardIngress"]


class CrossShardIngress:
    """Entry point for events stamped by *another* simulator's clock.

    The sharded rack runner (:mod:`repro.cluster`) delivers cross-shard
    packets as ``(stamp, callback)`` pairs at window barriers.  Conservative
    time-window synchronization guarantees every stamp lies at or beyond
    this simulator's clock; this queue is where that invariant is enforced
    rather than assumed — a stamp in the local past raises instead of
    silently reordering history.

    ``injected`` and ``min_margin_ns`` (the smallest observed
    ``stamp - now`` slack) are exported so tests and the bench ``rack``
    block can prove the lookahead bound held for a whole run.
    """

    __slots__ = ("sim", "injected", "min_margin_ns")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.injected = 0
        self.min_margin_ns: Optional[int] = None

    def inject(self, stamp: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``stamp`` (>= now)."""
        now = self.sim.now
        margin = stamp - now
        if margin < 0:
            raise SimulationError(
                f"conservative-sync violation: remote event stamped {stamp} "
                f"arrived with local clock at {now} ({-margin} ns in the past)"
            )
        if self.min_margin_ns is None or margin < self.min_margin_ns:
            self.min_margin_ns = margin
        self.injected += 1
        return self.sim.at(stamp, fn, *args)


def _sole_refcount() -> int:
    """Refcount observed for an object whose only reference is one local.

    Calibrated at import time instead of hard-coding 2, so the run loop's
    recycle guard stays correct if the interpreter changes how locals and
    call arguments contribute to ``sys.getrefcount``.
    """
    probe = object()
    return getrefcount(probe)


_SOLE_REF = _sole_refcount()


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all named RNG streams (see :class:`RngRegistry`).
    trace:
        Optional :class:`TraceRecorder`; defaults to a no-op tracer.
    queue_backend:
        Pending-event queue implementation: ``"heap"`` (default) for
        :class:`~repro.sim.event.EventQueue`, ``"wheel"`` for the
        hierarchical timing wheel (:mod:`repro.sim.wheel`).  Defaults to
        the ``REPRO_QUEUE_BACKEND`` environment variable when unset, so
        whole experiment sweeps can be switched without code changes.
        Both backends produce byte-identical results at a fixed seed.

    The clock is integer nanoseconds, starting at 0.  Events scheduled for
    the same instant fire in scheduling order, which makes runs reproducible
    from ``(code, seed)`` alone.
    """

    def __init__(
        self,
        seed: int = 0,
        trace: Optional[TraceRecorder] = None,
        queue_backend: Optional[str] = None,
    ) -> None:
        self.now: int = 0
        if queue_backend is None:
            queue_backend = os.environ.get("REPRO_QUEUE_BACKEND") or "heap"
        if queue_backend == "heap":
            self.queue = EventQueue()
        elif queue_backend == "wheel":
            from repro.sim.wheel import TimingWheelQueue

            self.queue = TimingWheelQueue()
        else:
            raise SimulationError(
                f"unknown queue backend {queue_backend!r} (expected 'heap' or 'wheel')"
            )
        self.queue_backend = queue_backend
        #: pre-bound queue peek, called once per fusion attempt (the queue
        #: object never changes after construction)
        self._peek_time = self.queue.peek_time
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else NullTracer()
        self.obs = Observability()
        #: barrier-time entry point for remotely-stamped events (repro.cluster)
        self.ingress = CrossShardIngress(self)
        self._profiler: Optional[EventProfiler] = None
        self._running = False
        self._events_fired = 0
        self._events_inlined = 0
        self._fuse_limit: Optional[int] = None

    # ----------------------------------------------------------------- API
    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (statistics/debugging).

        Counts *logical* events: segment completions applied inline by
        :meth:`advance_for_segment` are included, so the figure is
        comparable across runs with and without the fused fast path.
        """
        return self._events_fired

    @property
    def events_inlined(self) -> int:
        """How many of :attr:`events_fired` were fused (never hit the queue)."""
        return self._events_inlined

    # -------------------------------------------------------- observability
    def trace_bus(
        self,
        categories: Optional[Iterable[str]] = None,
        kinds: Optional[Iterable[str]] = None,
        capacity: int = 65536,
    ) -> TraceBus:
        """Install (and return) a :class:`~repro.obs.TraceBus` as the tracer."""
        self.trace = TraceBus(categories=categories, kinds=kinds, capacity=capacity)
        return self.trace

    def enable_spans(
        self,
        sample_every: int = 1,
        capacity: int = 262144,
        categories: Optional[Iterable[str]] = None,
        scope: Optional[str] = None,
    ) -> SpanRecorder:
        """Install per-request event-path span recording (``sim.obs.spans``).

        Installs a :class:`~repro.obs.TraceBus` as the tracer if one is not
        already installed (an existing bus is kept, filters and all, so
        callers can combine spans with their own category selection).  The
        recorder is an observer only: fixed-seed results are byte-identical
        with spans enabled or disabled.  ``scope`` namespaces context ids
        (``"<scope>#<n>"``) so recorders on different rack hosts can be
        merged for cross-shard stitching.
        """
        if not isinstance(self.trace, TraceBus):
            self.trace = TraceBus(categories=categories, capacity=capacity)
        if self.obs.spans is None:
            self.obs.spans = SpanRecorder(self.trace, sample_every=sample_every,
                                          scope=scope)
        return self.obs.spans

    def disable_spans(self) -> None:
        """Stop span recording (retained marks stay on the trace bus)."""
        self.obs.spans = None

    def enable_timeline(
        self,
        window_ns: int = 100_000,
        prefixes: Optional[Iterable[str]] = None,
        watchdog: bool = True,
        start: bool = True,
    ) -> TimelineSampler:
        """Install windowed telemetry sampling (``sim.obs.timeline``).

        The sampler fires every ``window_ns`` of simulated time and
        snapshots the selected counter-group prefixes; ``watchdog=True``
        also installs an :class:`~repro.obs.InvariantWatchdog` as a
        window listener (``sim.obs.watchdog``).  Observer only: the
        boundary events change ``events_fired``/sequence allocation but
        every simulated metric stays byte-identical at a fixed seed.

        Gauges and conservation sources are not wired here — the
        simulator does not know the topology; see
        ``Testbed.enable_timeline`` for the standard wiring.
        """
        if self.obs.timeline is None:
            self.obs.timeline = TimelineSampler(
                self, window_ns=window_ns,
                prefixes=tuple(prefixes) if prefixes is not None else None,
            )
            if watchdog:
                self.obs.watchdog = InvariantWatchdog(self)
                self.obs.timeline.add_listener(self.obs.watchdog.check_window)
        if start and not self.obs.timeline.running:
            self.obs.timeline.start()
        return self.obs.timeline

    def disable_timeline(self) -> None:
        """Stop and remove the timeline sampler (and its watchdog)."""
        if self.obs.timeline is not None:
            self.obs.timeline.stop()
        self.obs.timeline = None
        self.obs.watchdog = None

    def enable_profiling(self) -> EventProfiler:
        """Install per-event-type wall/sim-time profiling on the run loop."""
        if self._profiler is None:
            self._profiler = self.obs.profiler = EventProfiler()
        return self._profiler

    def disable_profiling(self) -> None:
        """Remove the run-loop profiler (profile data is discarded)."""
        self._profiler = self.obs.profiler = None

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now."""
        if delay <= 0:
            if delay < 0:
                raise SimulationError(f"cannot schedule into the past (delay={delay})")
            # Zero-delay events take the FIFO fast lane: same (time, seq)
            # firing order as a heap push at the current instant, no sift.
            return self.queue.push_soon(self.now, fn, args)
        return self.queue.push(self.now + int(delay), fn, args)

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time`` ns."""
        if time <= self.now:
            if time < self.now:
                raise SimulationError(f"cannot schedule into the past (t={time} < now={self.now})")
            return self.queue.push_soon(self.now, fn, args)
        return self.queue.push(int(time), fn, args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current instant, after pending same-time events."""
        return self.queue.push_soon(self.now, fn, args)

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event.  Returns True if it was still pending."""
        if event.pending:
            event.cancel()
            return True
        return False

    # ------------------------------------------------------------ run loop
    def advance_for_segment(self, delta: int) -> bool:
        """Fuse an uncontended CPU segment: advance the clock ``delta`` ns *now*.

        Returns True — and moves ``now`` forward — only when it is provable
        that the scheduled completion event would have fired with nothing in
        between: the next pending event lies *strictly after* the segment end
        (an event at exactly the end would carry a smaller ``seq`` than the
        completion event and must fire first), and the end is within the
        current ``run_until`` horizon.  Under those conditions applying the
        completion synchronously is byte-identical to the event-queue path:
        new events only arise from firing events, so nothing can interleave.

        Outside ``run_until`` (``step``/``run_until_empty``, which promise
        one event per step) this always returns False.
        """
        limit = self._fuse_limit
        if limit is None:
            return False
        end = self.now + delta
        if end > limit:
            return False
        nxt = self._peek_time()
        if nxt is not None and nxt <= end:
            return False
        self.now = end
        self._events_fired += 1
        self._events_inlined += 1
        return True

    def step(self) -> bool:
        """Execute the next event.  Returns False when no events remain."""
        queue = self.queue
        ev = queue.pop()
        if ev is None:
            return False
        if ev.time < self.now:
            raise SimulationError("event heap yielded an event in the past")
        self.now = ev.time
        self._events_fired += 1
        prof = self._profiler
        if prof is None:
            ev.fn(*ev.args)
        else:
            t0 = perf_counter_ns()
            ev.fn(*ev.args)
            prof.record(ev.fn, perf_counter_ns() - t0, self.now)
        if getrefcount(ev) == _SOLE_REF:
            queue.recycle(ev)
        return True

    def run_until(self, time: int) -> None:
        """Run events up to and including absolute time ``time``.

        The clock is left at ``time`` even if the queue drains earlier.
        """
        if time < self.now:
            raise SimulationError(f"run_until({time}) is in the past (now={self.now})")
        self._running = True
        queue = self.queue
        pop_until = queue.pop_until
        recycle = queue.recycle
        prof = self._profiler
        prev_limit = self._fuse_limit
        self._fuse_limit = time
        fired = 0
        try:
            if prof is None:
                while True:
                    ev = pop_until(time)
                    if ev is None:
                        break
                    self.now = ev.time
                    fired += 1
                    ev.fn(*ev.args)
                    # Recycle only when the loop holds the sole reference:
                    # any externally kept handle pins the object.
                    if getrefcount(ev) == _SOLE_REF:
                        recycle(ev)
            else:
                while True:
                    ev = pop_until(time)
                    if ev is None:
                        break
                    self.now = ev.time
                    fired += 1
                    t0 = perf_counter_ns()
                    ev.fn(*ev.args)
                    prof.record(ev.fn, perf_counter_ns() - t0, self.now)
                    if getrefcount(ev) == _SOLE_REF:
                        recycle(ev)
        finally:
            self._events_fired += fired
            self._fuse_limit = prev_limit
            self._running = False
        self.now = max(self.now, time)

    def run_for(self, duration: int) -> None:
        """Run events for ``duration`` ns of simulated time."""
        self.run_until(self.now + int(duration))

    def run_until_empty(self, max_events: int = 10_000_000) -> None:
        """Drain the event queue (bounded by ``max_events`` as a safety net)."""
        self._running = True
        try:
            for _ in range(max_events):
                if not self.step():
                    return
        finally:
            self._running = False
        # The budget may be spent by exactly the event that drained the
        # queue; only an actually non-empty queue is a runaway simulation.
        if len(self.queue):
            raise SimulationError(f"event queue did not drain within {max_events} events")
