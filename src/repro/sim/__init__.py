"""Discrete-event simulation kernel.

A small, deterministic DES core: an event heap keyed by (time, sequence),
cancellable events, a simulator clock in integer nanoseconds, named seeded
RNG streams, online statistics, and an optional structured trace recorder.
"""

from repro.sim.event import Event, EventQueue
from repro.sim.simulator import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.wheel import TimingWheelQueue
from repro.sim.stats import (
    Histogram,
    IntervalRate,
    RunningStat,
    TimeWeightedMean,
)
from repro.sim.trace import NullTracer, TraceRecorder

__all__ = [
    "Event",
    "EventQueue",
    "TimingWheelQueue",
    "Simulator",
    "RngRegistry",
    "RunningStat",
    "Histogram",
    "TimeWeightedMean",
    "IntervalRate",
    "TraceRecorder",
    "NullTracer",
]
