"""A hierarchical timing-wheel backend for the pending-event queue.

Drop-in alternative to :class:`~repro.sim.event.EventQueue` (selected with
``Simulator(queue_backend="wheel")`` or ``REPRO_QUEUE_BACKEND=wheel``) with
the same observable semantics: events fire in exact ``(time, seq)`` order,
cancellation is lazy, and ``push_soon`` events ride the same FIFO fast lane.

Layout
------
Two levels plus the FIFO lane:

* **fine wheel** — ``2**SLOT_BITS`` (256) unsorted buckets of
  ``2**GRANULARITY_BITS`` ns (~2 µs) each, covering a sliding window of
  ~512 µs starting at ``_floor`` (the slot key of the last popped event).
  Short-horizon timers — segment completions, vhost repoll timers, NAPI
  budgets — are appended in O(1) and cancelled in O(1) (lazy flag).
* **far heap** — everything beyond the window sits in a conventional heap
  and *cascades* into the wheel once the window slides over it.

Cascade rule: before each scan, far-heap heads whose slot key has entered
``[_floor, _floor + 2**SLOT_BITS)`` move into their bucket.  ``_floor``
only ever advances to the key of a popped event's time, and pushes never
target times before "now", so every live bucket entry has a key inside the
window — two entries in the same bucket therefore share the same key, and
the bucket minimum is the window minimum.  A far-heap entry pushed for a
time *before* the current window (possible only for queue users that push
into the past, which the simulator forbids) stays in the heap and is merged
by head comparison, so ordering is preserved even then.

Pop finds the earliest bucket at or after ``_floor``, takes its minimum
``(time, seq)`` entry, and compares it against the far-heap head and the
FIFO head.  The scan result is cached and invalidated by earlier pushes or
cancellation of the cached entry, so repeated peek/pop pairs do not rescan.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.event import _FREE_LIST_CAP, _PRUNE_THRESHOLD, Event

__all__ = ["TimingWheelQueue", "SLOT_BITS", "GRANULARITY_BITS"]

#: log2 of the number of fine-wheel buckets.
SLOT_BITS = 8
#: log2 of the nanoseconds covered by one bucket (2048 ns ≈ 2 µs).
GRANULARITY_BITS = 11

_SLOTS = 1 << SLOT_BITS
_MASK = _SLOTS - 1

# Internal cache entry: (time, seq, event, in_wheel).
_Entry = Tuple[int, int, Event]


class TimingWheelQueue:
    """Timing-wheel priority queue of :class:`Event` with lazy cancellation."""

    __slots__ = ("_slots", "_wheel_len", "_floor", "_far", "_fifo",
                 "_seq", "_live", "_dead", "_cache", "_free")

    def __init__(self) -> None:
        self._slots: List[List[_Entry]] = [[] for _ in range(_SLOTS)]
        self._wheel_len = 0  # entries (live or cancelled) currently in buckets
        self._floor = 0  # slot key of the last popped non-FIFO event
        self._far: List[_Entry] = []
        self._fifo: Deque[Event] = deque()
        self._seq = 0
        self._live = 0
        self._dead = 0
        self._cache: Optional[Tuple[int, int, Event, bool]] = None
        self._free: List[Event] = []

    def __len__(self) -> int:
        """Number of *live* (non-cancelled, unfired) events."""
        return self._live

    def free_list_size(self) -> int:
        """Recycled events currently pooled for reuse (observability gauge)."""
        return len(self._free)

    # -------------------------------------------------------------- insertion
    def _obtain(self, time: int, seq: int, fn: Callable[..., Any], args: tuple) -> Event:
        free = self._free
        if free:
            ev = free.pop()
            ev.time = time
            ev.seq = seq
            ev.fn = fn
            ev.args = args
            ev._cancelled = False
            ev._fired = False
            ev._queue = self
            return ev
        return Event(time, seq, fn, args, self)

    def push(self, time: int, fn: Callable[..., Any], args: tuple = ()) -> Event:
        """Schedule ``fn(*args)`` at absolute time ``time`` and return the event."""
        seq = self._seq
        self._seq = seq + 1
        ev = self._obtain(time, seq, fn, args)
        key = time >> GRANULARITY_BITS
        floor = self._floor
        if floor <= key < floor + _SLOTS:
            self._slots[key & _MASK].append((time, seq, ev))
            self._wheel_len += 1
        else:
            # Beyond the window — or (for non-simulator users only) before
            # it; both lanes are merged by head comparison at pop time.
            heapq.heappush(self._far, (time, seq, ev))
        cache = self._cache
        if cache is not None and (time < cache[0] or (time == cache[0] and seq < cache[1])):
            self._cache = None
        self._live += 1
        return ev

    def push_soon(self, time: int, fn: Callable[..., Any], args: tuple = ()) -> Event:
        """FIFO fast lane for events at the current instant (``call_soon``)."""
        seq = self._seq
        self._seq = seq + 1
        ev = self._obtain(time, seq, fn, args)
        self._fifo.append(ev)
        self._live += 1
        return ev

    def recycle(self, ev: Event) -> None:
        """Return a fired event to the free list (see ``EventQueue.recycle``)."""
        if not ev._fired or ev._queue is None:
            return
        ev._queue = None
        ev.fn = None  # type: ignore[assignment]
        ev.args = ()
        free = self._free
        if len(free) < _FREE_LIST_CAP:
            free.append(ev)

    # ---------------------------------------------------------- bookkeeping
    def _note_cancelled(self, ev: Event) -> None:
        if self._live <= 0:
            raise SimulationError("cancelled more events than were live")
        self._live -= 1
        self._dead += 1
        cache = self._cache
        if cache is not None and cache[2] is ev:
            self._cache = None
        size = self._wheel_len + len(self._far) + len(self._fifo)
        if self._dead > _PRUNE_THRESHOLD and self._dead * 2 > size:
            self._prune()

    def note_cancelled(self) -> None:
        """Deprecated bookkeeping hook, kept as a no-op for compatibility."""

    def _prune(self) -> None:
        """Batched removal of cancelled entries from every lane."""
        entries = [e for e in self._far if not e[2]._cancelled]
        for bucket in self._slots:
            if bucket:
                entries.extend(e for e in bucket if not e[2]._cancelled)
                bucket.clear()
        self._wheel_len = 0
        self._far = []
        floor = self._floor
        end = floor + _SLOTS
        for entry in entries:
            key = entry[0] >> GRANULARITY_BITS
            if floor <= key < end:
                self._slots[key & _MASK].append(entry)
                self._wheel_len += 1
            else:
                self._far.append(entry)
        heapq.heapify(self._far)
        if self._fifo:
            self._fifo = deque(ev for ev in self._fifo if not ev._cancelled)
        self._dead = 0
        self._cache = None

    # ----------------------------------------------------------- retrieval
    def _find_min(self) -> Optional[Tuple[int, int, Event, bool]]:
        """Earliest live non-FIFO entry as ``(time, seq, ev, in_wheel)``.

        Cascades in-window far-heap entries, prunes cancelled entries from
        the buckets it scans, and caches the result; the cache stays valid
        until an earlier push or cancellation of the cached entry.
        """
        cache = self._cache
        if cache is not None and not cache[2]._cancelled:
            return cache
        self._cache = None
        far = self._far
        floor = self._floor
        end = floor + _SLOTS
        slots = self._slots
        # Cascade: migrate far-heap heads that entered the window.  Heads
        # before the window (past-time pushes by non-simulator users) stay
        # and are merged by comparison below.
        while far:
            head = far[0]
            if head[2]._cancelled:
                heapq.heappop(far)
                self._dead -= 1
                continue
            key = head[0] >> GRANULARITY_BITS
            if floor <= key < end:
                heapq.heappop(far)
                slots[key & _MASK].append(head)
                self._wheel_len += 1
                continue
            break
        best: Optional[_Entry] = None
        if self._wheel_len:
            key = floor
            for _ in range(_SLOTS):
                bucket = slots[key & _MASK]
                if bucket:
                    live = [e for e in bucket if not e[2]._cancelled]
                    ndead = len(bucket) - len(live)
                    if ndead:
                        bucket[:] = live
                        self._dead -= ndead
                        self._wheel_len -= ndead
                    if live:
                        best = min(live)
                        break
                key += 1
        if best is None:
            if not far:
                return None
            self._cache = (far[0][0], far[0][1], far[0][2], False)
            return self._cache
        if far and far[0] < best:
            self._cache = (far[0][0], far[0][1], far[0][2], False)
        else:
            self._cache = (best[0], best[1], best[2], True)
        return self._cache

    def _remove(self, found: Tuple[int, int, Event, bool]) -> None:
        """Physically remove the entry returned by :meth:`_find_min`."""
        time, seq, ev, in_wheel = found
        key = time >> GRANULARITY_BITS
        if in_wheel:
            self._slots[key & _MASK].remove((time, seq, ev))
            self._wheel_len -= 1
            if key > self._floor:
                self._floor = key
        else:
            heapq.heappop(self._far)
            # Advancing the floor past far-heap territory is only safe when
            # no bucket entry could alias into the widened window.
            if self._wheel_len == 0 and key > self._floor:
                self._floor = key
        self._cache = None

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or None if the queue is empty."""
        fifo = self._fifo
        while fifo and fifo[0]._cancelled:
            fifo.popleft()
            self._dead -= 1
        found = self._find_min()
        if found is not None:
            if fifo and fifo[0].time <= found[0]:
                return fifo[0].time
            return found[0]
        if fifo:
            return fifo[0].time
        return None

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or None if empty."""
        fifo = self._fifo
        while fifo and fifo[0]._cancelled:
            fifo.popleft()
            self._dead -= 1
        found = self._find_min()
        if found is not None:
            if fifo and (fifo[0].time < found[0]
                         or (fifo[0].time == found[0] and fifo[0].seq < found[1])):
                ev = fifo.popleft()
            else:
                ev = found[2]
                self._remove(found)
        elif fifo:
            ev = fifo.popleft()
        else:
            return None
        ev._fired = True
        self._live -= 1
        return ev

    def pop_until(self, limit: int) -> Optional[Event]:
        """Pop the next live event if its time is ``<= limit``, else None."""
        fifo = self._fifo
        while fifo and fifo[0]._cancelled:
            fifo.popleft()
            self._dead -= 1
        found = self._find_min()
        if found is not None:
            if fifo and (fifo[0].time < found[0]
                         or (fifo[0].time == found[0] and fifo[0].seq < found[1])):
                if fifo[0].time > limit:
                    return None
                ev = fifo.popleft()
            else:
                if found[0] > limit:
                    return None
                ev = found[2]
                self._remove(found)
        elif fifo:
            if fifo[0].time > limit:
                return None
            ev = fifo.popleft()
        else:
            return None
        ev._fired = True
        self._live -= 1
        return ev

    def clear(self) -> None:
        """Drop every pending event."""
        for bucket in self._slots:
            for _, _, ev in bucket:
                ev._queue = None
            bucket.clear()
        for _, _, ev in self._far:
            ev._queue = None
        for ev in self._fifo:
            ev._queue = None
        self._wheel_len = 0
        self._far.clear()
        self._fifo.clear()
        self._live = 0
        self._dead = 0
        self._cache = None
