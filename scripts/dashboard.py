#!/usr/bin/env python
"""Render the self-contained HTML bench dashboard.

Thin wrapper over ``python -m repro dashboard`` for environments that
invoke scripts by path (CI steps, cron); all logic lives in
:mod:`repro.obs.dashcli` / :mod:`repro.obs.dashboard` so the CLI and
this script cannot drift.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.obs.dashcli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
