#!/usr/bin/env python
"""CI determinism guard: serial and parallel sweeps must agree exactly.

Runs one fixed-seed Fig.-4 point set twice — serially and with
``--jobs 2`` — serializes both result lists to canonical JSON, and fails
(exit 1) if they differ by a single byte.  This is the executable form of
the determinism contract in ``repro.parallel.sweep``: worker scheduling
must never influence results.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.experiments.fig4 import run_fig4  # noqa: E402
from repro.units import MS  # noqa: E402

SEED = 1
QUOTAS = (8, 4)
WARMUP_NS = 20 * MS
MEASURE_NS = 60 * MS


def _canonical_json(points) -> str:
    return json.dumps([dataclasses.asdict(p) for p in points], sort_keys=True, indent=1)


def main() -> int:
    kwargs = dict(quotas=QUOTAS, seed=SEED, warmup_ns=WARMUP_NS,
                  measure_ns=MEASURE_NS, cache=False)
    serial = _canonical_json(run_fig4("udp", jobs=1, **kwargs))
    parallel = _canonical_json(run_fig4("udp", jobs=2, **kwargs))
    if serial != parallel:
        print("DETERMINISM GUARD FAILED: serial and --jobs 2 results differ", file=sys.stderr)
        for i, (a, b) in enumerate(zip(serial.splitlines(), parallel.splitlines())):
            if a != b:
                print(f"  line {i}: serial   {a}", file=sys.stderr)
                print(f"  line {i}: parallel {b}", file=sys.stderr)
        return 1
    print(f"determinism guard OK: fig4 udp seed={SEED} quotas={QUOTAS} "
          "identical under jobs=1 and jobs=2")
    return 0


if __name__ == "__main__":
    sys.exit(main())
