#!/usr/bin/env python
"""CI determinism guard: serial, parallel, wheel, and timeline runs must agree.

Runs one fixed-seed Fig.-4 point set four ways — serially, with
``--jobs 2``, serially under the timing-wheel event-queue backend
(``REPRO_QUEUE_BACKEND=wheel``), and serially with windowed telemetry +
invariant watchdog enabled (``REPRO_TIMELINE=1``) — serializes each
result list to canonical JSON, and fails (exit 1) if any pair differs by
a single byte.  This is the executable form of three contracts: worker
scheduling must never influence results (``repro.parallel.sweep``), both
event-queue backends must produce the exact same firing order
(``repro.sim.wheel``), and the timeline sampler is an observer whose
boundary events never perturb simulated metrics (``repro.obs.timeline``).

A **sharded leg** extends the guard to the rack (``repro.cluster``): the
same fixed-seed rack scenario at 1, 2 and 4 shards must produce
byte-identical ``simulated`` blocks — the conservative window-barrier
protocol's layout-independence contract.  The leg then repeats every
shard count with **rack telemetry enabled** (host-scoped spans, windowed
timelines + watchdog, barrier profiling — ``repro.obs.rack``) and holds
those digests to the same reference: observability is an observer at
rack scale too, or this guard fails.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.experiments.fig4 import run_fig4  # noqa: E402
from repro.units import MS  # noqa: E402

SEED = 1
QUOTAS = (8, 4)
WARMUP_NS = 20 * MS
MEASURE_NS = 60 * MS

#: sharded-leg parameters: shard layouts compared and the rack windows
RACK_SHARDS = (1, 2, 4)
RACK_WARMUP_NS = 1 * MS
RACK_MEASURE_NS = 6 * MS


def _canonical_json(points) -> str:
    return json.dumps([dataclasses.asdict(p) for p in points], sort_keys=True, indent=1)


def _diff(label_a: str, a: str, label_b: str, b: str) -> None:
    print(f"DETERMINISM GUARD FAILED: {label_a} and {label_b} results differ",
          file=sys.stderr)
    for i, (la, lb) in enumerate(zip(a.splitlines(), b.splitlines())):
        if la != lb:
            print(f"  line {i}: {label_a:<8} {la}", file=sys.stderr)
            print(f"  line {i}: {label_b:<8} {lb}", file=sys.stderr)


def main() -> int:
    kwargs = dict(quotas=QUOTAS, seed=SEED, warmup_ns=WARMUP_NS,
                  measure_ns=MEASURE_NS, cache=False)
    serial = _canonical_json(run_fig4("udp", jobs=1, **kwargs))
    parallel = _canonical_json(run_fig4("udp", jobs=2, **kwargs))
    if serial != parallel:
        _diff("serial", serial, "parallel", parallel)
        return 1
    prev_backend = os.environ.get("REPRO_QUEUE_BACKEND")
    os.environ["REPRO_QUEUE_BACKEND"] = "wheel"
    try:
        wheel = _canonical_json(run_fig4("udp", jobs=1, **kwargs))
    finally:
        if prev_backend is None:
            del os.environ["REPRO_QUEUE_BACKEND"]
        else:
            os.environ["REPRO_QUEUE_BACKEND"] = prev_backend
    if serial != wheel:
        _diff("heap", serial, "wheel", wheel)
        return 1
    prev_timeline = os.environ.get("REPRO_TIMELINE")
    os.environ["REPRO_TIMELINE"] = "1"
    try:
        timeline = _canonical_json(run_fig4("udp", jobs=1, **kwargs))
    finally:
        if prev_timeline is None:
            del os.environ["REPRO_TIMELINE"]
        else:
            os.environ["REPRO_TIMELINE"] = prev_timeline
    if serial != timeline:
        _diff("plain", serial, "timeline", timeline)
        return 1
    print(f"determinism guard OK: fig4 udp seed={SEED} quotas={QUOTAS} "
          "identical under jobs=1, jobs=2, the wheel queue backend, "
          "and with the timeline sampler enabled")

    # Sharded leg: the rack's simulated block is layout-invariant.
    from repro.cluster import (
        RackTelemetry,
        reduced_rack_spec,
        run_rack_once,
        simulated_digest,
    )

    spec = reduced_rack_spec(seed=SEED)
    digests = {}
    for n_shards in RACK_SHARDS:
        report = run_rack_once(spec, n_shards, RACK_MEASURE_NS,
                               warmup_ns=RACK_WARMUP_NS)
        digests[n_shards] = simulated_digest(report)
    reference = RACK_SHARDS[0]
    for n_shards in RACK_SHARDS[1:]:
        if digests[n_shards] != digests[reference]:
            _diff(f"{reference}-shard", digests[reference],
                  f"{n_shards}-shard", digests[n_shards])
            return 1
    print(f"determinism guard OK: rack seed={SEED} simulated block "
          f"byte-identical at {RACK_SHARDS} shards")

    # Telemetry leg: rack observability (spans + timeline + watchdog +
    # barrier profiling) must not move a single simulated byte, at any
    # shard count, relative to the *un-instrumented* reference above.
    telemetry = RackTelemetry()
    for n_shards in RACK_SHARDS:
        report = run_rack_once(spec, n_shards, RACK_MEASURE_NS,
                               warmup_ns=RACK_WARMUP_NS, telemetry=telemetry)
        instrumented = simulated_digest(report)
        if instrumented != digests[reference]:
            _diff("plain-rack", digests[reference],
                  f"telemetry-{n_shards}-shard", instrumented)
            return 1
        if "telemetry" not in report:
            print("DETERMINISM GUARD FAILED: telemetry run produced no "
                  "telemetry block", file=sys.stderr)
            return 1
    print(f"determinism guard OK: rack telemetry is observer-only — "
          f"simulated block unchanged at {RACK_SHARDS} shards with spans, "
          "timeline, watchdog and barrier profiling enabled")
    return 0


if __name__ == "__main__":
    sys.exit(main())
