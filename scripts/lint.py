#!/usr/bin/env python
"""Dependency-free fallback linter (used by ``make lint`` when ruff is absent).

Implements the subset of the repo's ruff policy that matters most and can
be checked reliably with only the standard library:

* **F401** — unused imports (module and function scope);
* **E711** — comparisons to ``None`` with ``==`` / ``!=``;
* **A001-ish** — function/lambda parameters and assignments that shadow a
  curated set of builtins (``id``, ``list``, ``type``, ...);
* syntax errors (the file must parse at all).

Usage: ``python scripts/lint.py [paths...]`` — directories are walked for
``*.py``.  A ``# noqa`` anywhere on the offending line suppresses it.
Exit code 1 when any finding survives.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import List, Tuple

SHADOW_BUILTINS = frozenset({
    "id", "type", "list", "dict", "set", "tuple", "input", "format", "vars",
    "filter", "map", "max", "min", "sum", "hash", "bytes", "str", "int",
    "float", "bool", "object", "print", "len", "range", "iter", "next",
    "open", "dir", "all", "any",
})

Finding = Tuple[str, int, str, str]  # path, line, code, message


def _import_bindings(tree: ast.AST) -> List[Tuple[str, int]]:
    """(bound name, line) for every import statement in the module."""
    out: List[Tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                out.append((name, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                out.append((alias.asname or alias.name, node.lineno))
    return out


def _check_unused_imports(path: Path, tree: ast.AST, lines: List[str]) -> List[Finding]:
    source_no_imports = "\n".join(
        "" if re.match(r"\s*(from\s+\S+\s+)?import\s", line) or
             re.match(r"\s*\S+,?\s*$", line) and _line_in_import_continuation(lines, i)
        else line
        for i, line in enumerate(lines)
    )
    findings = []
    for name, lineno in _import_bindings(tree):
        if name.startswith("_"):
            continue
        if not re.search(rf"\b{re.escape(name)}\b", source_no_imports):
            findings.append((str(path), lineno, "F401", f"'{name}' imported but unused"))
    return findings


def _line_in_import_continuation(lines: List[str], i: int) -> bool:
    """Heuristic: bare-name lines inside a parenthesized import block."""
    for j in range(i, -1, -1):
        stripped = lines[j].strip()
        if re.match(r"(from\s+\S+\s+)?import\s.*\($", stripped):
            return True
        if j < i and (stripped.endswith(")") or not stripped or
                      not re.match(r"[\w.,()\s*]+$", stripped)):
            return False
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: Path, lines: List[str]):
        self.path = path
        self.lines = lines
        self.findings: List[Finding] = []
        self._class_depth = 0  # methods may legitimately be called max/min/...

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append((str(self.path), node.lineno, code, message))

    def visit_Compare(self, node: ast.Compare) -> None:
        for op, comparator in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                isinstance(comparator, ast.Constant) and comparator.value is None
            ):
                token = "==" if isinstance(op, ast.Eq) else "!="
                fix = "is" if isinstance(op, ast.Eq) else "is not"
                self._add(node, "E711", f"comparison to None with '{token}' (use '{fix}')")
        self.generic_visit(node)

    def _check_args(self, node) -> None:
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg in SHADOW_BUILTINS:
                self._add(node, "A002", f"argument '{arg.arg}' shadows a builtin")

    def visit_FunctionDef(self, node) -> None:
        if node.name in SHADOW_BUILTINS and self._class_depth == 0:
            self._add(node, "A001", f"function '{node.name}' shadows a builtin")
        self._check_args(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_depth += 1
        self.generic_visit(node)
        self._class_depth -= 1

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_args(node)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id in SHADOW_BUILTINS:
                self._add(node, "A001", f"assignment to '{target.id}' shadows a builtin")
        self.generic_visit(node)


def lint_file(path: Path) -> List[Finding]:
    """All findings for one file (a noqa comment on the line suppresses)."""
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [(str(path), exc.lineno or 0, "E999", f"syntax error: {exc.msg}")]
    visitor = _Visitor(path, lines)
    visitor.visit(tree)
    findings = _check_unused_imports(path, tree, lines) + visitor.findings
    return [
        f for f in findings
        if f[1] == 0 or f[1] > len(lines) or "noqa" not in lines[f[1] - 1]
    ]


def main(argv: List[str]) -> int:
    roots = [Path(p) for p in (argv or ["src", "tests", "scripts"])]
    files: List[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        elif root.suffix == ".py":
            files.append(root)
    findings: List[Finding] = []
    for path in files:
        findings.extend(lint_file(path))
    for path, lineno, code, message in sorted(findings):
        print(f"{path}:{lineno}: {code} {message}")
    print(f"lint: {len(files)} files checked, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
