#!/usr/bin/env python
"""Diff two ``BENCH_<rev>.json`` reports and gate on perf regressions.

Usage::

    python scripts/bench_compare.py BASELINE.json CURRENT.json \
        [--max-throughput-drop PCT] [--max-p99-increase PCT] \
        [--gate-events-rate RATIO]

Compares every throughput point (Gbps, lower is worse) and every ping
latency point (p99 ms, higher is worse) shared by the two reports and
exits non-zero when any metric regresses beyond the threshold (default
10% either way).  Metrics present in only one report are listed but never
gate — schema growth must not break the trajectory.  Stdlib only, so the
gate runs anywhere the repo runs.

``--gate-events-rate`` additionally gates on the run-loop rate
(``events_per_sec_wall``): the current report must reach at least RATIO
times the baseline's rate.  It is opt-in because wall-clock rates are
machine-dependent — CI uses it only as a non-blocking annotation; the
hard gate stays on the simulated metrics above.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterator, List, Tuple

DEFAULT_MAX_DROP_PCT = 10.0
DEFAULT_MAX_P99_INCREASE_PCT = 10.0


def load_report(path: str) -> Dict[str, Any]:
    """Load one bench report, checking the schema name."""
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    schema = report.get("schema", {})
    if schema.get("name") != "repro-bench":
        raise SystemExit(f"{path}: not a repro-bench report (schema={schema!r})")
    return report


def _metrics(report: Dict[str, Any]) -> Iterator[Tuple[str, str, float]]:
    """Yield ``(metric_id, direction, value)``; direction 'higher'/'lower'
    is the *good* way for the value to move."""
    for name, point in report.get("throughput", {}).items():
        yield f"throughput[{name}].gbps", "higher", float(point["throughput_gbps"])
    hybrid = report.get("hybrid", {})
    for label in ("baseline", "quota8"):
        if label in hybrid:
            yield f"hybrid[{label}].gbps", "higher", float(hybrid[label]["throughput_gbps"])
    for name, point in report.get("latency_ms", {}).items():
        yield f"latency[{name}].p99_ms", "lower", float(point["p99_ms"])
    # Schema v3: steady-state exit rate reaggregated from warm-up-excluded
    # timeline windows — gates on the windowed shape, not just the aggregate.
    for name, point in report.get("throughput", {}).items():
        steady = point.get("timeline", {}).get("steady_state")
        if steady and "exits_per_sec_total" in steady:
            yield (f"steady[{name}].exits_per_sec", "lower",
                   float(steady["exits_per_sec_total"]))
    # Schema v4: scheduler-zoo ping points (full ES2 per host policy, plus
    # one adaptive-allocation point).  New metrics list-but-don't-gate
    # against older baselines automatically.
    sched = report.get("sched", {})
    for policy, point in sched.get("policies", {}).items():
        yield f"sched[{policy}].p99_ms", "lower", float(point["p99_ms"])
    adaptive = sched.get("adaptive")
    if adaptive:
        yield "sched[adaptive].p99_ms", "lower", float(adaptive["p99_ms"])


def _rack_info(report: Dict[str, Any]) -> Dict[str, float]:
    """Schema v5/v6 rack metrics: listed for trajectory, never gated.

    Everything here is either wall-clock scaling on whatever machine ran
    the bench (shard processes racing for cores) or observability output
    whose interesting failure modes (missing marks, broken stitching)
    already fail tests, so thresholding it would gate on CI hardware,
    not on the code.  Byte-identity — the rack's *correctness* claim —
    is enforced by the determinism guard, not here.
    """
    rack = report.get("rack")
    if not rack:
        return {}
    info: Dict[str, float] = {}
    for count in rack.get("shard_counts", []):
        point = rack["points"][str(count)]
        info[f"rack[{count}].aggregate_events_per_sec"] = \
            float(point["aggregate_events_per_sec"])
        info[f"rack[{count}].ops_per_sec"] = float(point["ops_per_sec"])
        waits = [s["barrier_wait_fraction"] for s in point["shards"]]
        info[f"rack[{count}].barrier_wait_max"] = float(max(waits)) if waits else 0.0
    info["rack.aggregate_speedup"] = float(rack.get("aggregate_speedup", 0.0))
    info["rack.simulated_identical"] = 1.0 if rack.get("simulated_identical") else 0.0
    tel = rack.get("telemetry") or {}
    if tel:
        paths = tel.get("paths", {})
        counts = paths.get("counts", {})
        rtt = paths.get("rtt", {})
        info["rack.telemetry.paths_total"] = float(counts.get("total", 0))
        info["rack.telemetry.paths_complete"] = float(counts.get("complete", 0))
        info["rack.telemetry.rtt_p50_us"] = float(rtt.get("p50_us", 0.0))
        info["rack.telemetry.rtt_p99_us"] = float(rtt.get("p99_us", 0.0))
        cross = paths.get("cross_host", {})
        info["rack.telemetry.multi_host_paths"] = \
            float(cross.get("complete_multi_host", 0))
        wd = tel.get("watchdog", {})
        info["rack.telemetry.watchdog_violations"] = \
            float(wd.get("violations", 0))
        barrier = tel.get("barrier", {})
        utils = [s.get("lookahead_utilization", 0.0)
                 for s in barrier.get("per_shard", [])]
        if utils:
            info["rack.telemetry.lookahead_util_min"] = float(min(utils))
    return info


def compare(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    max_drop_pct: float = DEFAULT_MAX_DROP_PCT,
    max_p99_increase_pct: float = DEFAULT_MAX_P99_INCREASE_PCT,
) -> Tuple[List[str], List[str]]:
    """Return ``(table_lines, regressions)`` for the two reports."""
    base = {mid: (d, v) for mid, d, v in _metrics(baseline)}
    cur = {mid: (d, v) for mid, d, v in _metrics(current)}
    lines: List[str] = []
    regressions: List[str] = []
    width = max((len(m) for m in set(base) | set(cur)), default=10)
    lines.append(f"{'metric':<{width}} {'baseline':>12} {'current':>12} {'delta':>9}")
    for mid in sorted(set(base) | set(cur)):
        if mid not in base:
            lines.append(f"{mid:<{width}} {'-':>12} {cur[mid][1]:>12.4f}   (new; not gated)")
            continue
        if mid not in cur:
            lines.append(f"{mid:<{width}} {base[mid][1]:>12.4f} {'-':>12}   (gone; not gated)")
            continue
        direction, bval = base[mid]
        cval = cur[mid][1]
        if bval == 0:
            delta_pct = 0.0 if cval == 0 else float("inf")
        else:
            delta_pct = (cval - bval) / bval * 100.0
        limit = max_drop_pct if direction == "higher" else max_p99_increase_pct
        bad = (direction == "higher" and delta_pct < -limit) or (
            direction == "lower" and delta_pct > limit
        )
        flag = "  REGRESSION" if bad else ""
        lines.append(f"{mid:<{width}} {bval:>12.4f} {cval:>12.4f} {delta_pct:>+8.1f}%{flag}")
        if bad:
            regressions.append(
                f"{mid}: {bval:.4f} -> {cval:.4f} ({delta_pct:+.1f}%, limit {limit:.0f}%)"
            )
    rack_base = _rack_info(baseline)
    rack_cur = _rack_info(current)
    if rack_base or rack_cur:
        lines.append("rack (informational, never gated):")
        rwidth = max(len(m) for m in set(rack_base) | set(rack_cur))
        for mid in sorted(set(rack_base) | set(rack_cur)):
            bstr = f"{rack_base[mid]:>12.4f}" if mid in rack_base else f"{'-':>12}"
            cstr = f"{rack_cur[mid]:>12.4f}" if mid in rack_cur else f"{'-':>12}"
            lines.append(f"  {mid:<{rwidth}} {bstr} {cstr}")
    return lines, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_<rev>.json")
    parser.add_argument("current", help="current BENCH_<rev>.json")
    parser.add_argument("--max-throughput-drop", type=float, default=DEFAULT_MAX_DROP_PCT,
                        metavar="PCT", help="allowed throughput drop in percent (default 10)")
    parser.add_argument("--max-p99-increase", type=float, default=DEFAULT_MAX_P99_INCREASE_PCT,
                        metavar="PCT", help="allowed p99 latency increase in percent (default 10)")
    parser.add_argument("--gate-events-rate", type=float, default=None, metavar="RATIO",
                        help="require current events_per_sec_wall >= RATIO * baseline's "
                             "(opt-in; machine-dependent, keep out of hard CI gates)")
    args = parser.parse_args(argv)

    baseline = load_report(args.baseline)
    current = load_report(args.current)
    for label, report in (("baseline", baseline), ("current", current)):
        print(f"{label + ':':<9} rev={report.get('revision')} "
              f"(schema v{report['schema']['version']})")
        flow = report.get("flow")
        if flow:
            # Provenance stamped by `repro flow run --bench-out`: which
            # orchestrated run produced this report.
            print(f"{'':<9} flow run {flow.get('run_key')} "
                  f"(mode={flow.get('mode')}, jobs={flow.get('jobs')}, "
                  f"code={flow.get('code_version')})")
    lines, regressions = compare(
        baseline, current,
        max_drop_pct=args.max_throughput_drop,
        max_p99_increase_pct=args.max_p99_increase,
    )
    print("\n".join(lines))
    if args.gate_events_rate is not None:
        base_rate = float(baseline.get("events_per_sec_wall", 0.0))
        cur_rate = float(current.get("events_per_sec_wall", 0.0))
        if base_rate <= 0:
            print("events_per_sec_wall: baseline has no rate; events gate skipped")
        else:
            ratio = cur_rate / base_rate
            print(f"events_per_sec_wall: {base_rate:,.0f} -> {cur_rate:,.0f} "
                  f"({ratio:.2f}x, required >= {args.gate_events_rate:.2f}x)")
            if ratio < args.gate_events_rate:
                regressions.append(
                    f"events_per_sec_wall: {cur_rate:,.0f} is {ratio:.2f}x baseline "
                    f"(required >= {args.gate_events_rate:.2f}x)"
                )
    violations = current.get("watchdog_violations", 0)
    if violations:
        regressions.append(
            f"watchdog_violations: {violations} conservation-law violation(s) "
            "in the current report (expected 0)"
        )
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond threshold:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
