#!/usr/bin/env python3
"""Run every paper experiment and print the results (EXPERIMENTS.md source).

This is now a thin shim over the DAG runner (``python -m repro flow run``):
the same experiments, parameterized identically, but orchestrated as a
dependency-aware graph with resumable per-task state — a failed stage no
longer aborts the stages after it, re-invocations resume where they
stopped, and only tasks whose inputs changed are recomputed.

A failure in one experiment reports which stage failed (and which
downstream renders were skipped because of it) after the rest of the DAG
has finished, and the process exits nonzero.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="task-level worker processes (0 = all CPUs, 1 = serial — serial "
             "runs give each sweep all CPUs instead)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every sweep point instead of consulting the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-es2)",
    )
    parser.add_argument(
        "--reduced",
        action="store_true",
        help="reduced mode: short windows + trimmed grids (the CI configuration)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="ignore persisted flow state and recompute every task",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    from repro.flow.cli import main as flow_main

    flow_argv = ["run", "--mode", "reduced" if args.reduced else "full",
                 "--jobs", str(args.jobs), "--print-report"]
    if args.no_cache:
        flow_argv.append("--no-cache")
    if args.cache_dir is not None:
        flow_argv.extend(["--cache-dir", args.cache_dir])
    if args.force:
        flow_argv.append("--force")
    return flow_main(flow_argv)


if __name__ == "__main__":
    sys.exit(main())
