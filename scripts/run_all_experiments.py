#!/usr/bin/env python3
"""Run every paper experiment and print the results (EXPERIMENTS.md source).

This is the long-form run behind EXPERIMENTS.md; the benchmark suite runs
the same experiments with shorter windows.  Sweep points fan out over
worker processes (``--jobs``, default: all CPUs) and completed points are
reused from the on-disk result cache unless ``--no-cache`` is given.
"""

from __future__ import annotations

import argparse
import os
import time

from repro.experiments.ablations import format_redirect_ablation, run_redirect_policy_ablation
from repro.experiments.fig4 import format_fig4, run_fig4
from repro.experiments.fig5 import format_fig5, run_fig5
from repro.experiments.fig6 import format_fig6, run_fig6
from repro.experiments.fig7 import format_fig7, run_fig7
from repro.experiments.fig8 import format_fig8, run_fig8
from repro.experiments.fig9 import find_knee, format_fig9, run_fig9
from repro.experiments.schedzoo import format_sched_sweep, run_sched_sweep
from repro.experiments.sriov import format_sriov, run_sriov
from repro.experiments.coalescing import format_coalescing, run_coalescing
from repro.experiments.table1 import format_table1, run_table1
from repro.units import MS, SEC

WARMUP = 200 * MS
MEASURE = 500 * MS


def stamp(label):
    print(f"\n===== {label} [{time.strftime('%H:%M:%S')}] =====", flush=True)


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes for sweeps (0 = all CPUs, 1 = serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every sweep point instead of consulting the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-es2)",
    )
    return parser.parse_args(argv)


def main(argv=None) -> None:
    args = parse_args(argv)
    jobs = args.jobs
    cache = not args.no_cache
    if args.cache_dir is not None:
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
    t0 = time.monotonic()

    stamp("Table I")
    print(format_table1(run_table1(seed=1, warmup_ns=WARMUP, measure_ns=MEASURE,
                                   jobs=jobs, cache=cache)))

    stamp("Fig 4a (UDP)")
    print(format_fig4(run_fig4("udp", seed=1, warmup_ns=WARMUP, measure_ns=MEASURE,
                               jobs=jobs, cache=cache), "udp"))
    stamp("Fig 4a (UDP 1024B)")
    print(format_fig4(run_fig4("udp", payload_size=1024, quotas=(32, 16, 8), seed=1,
                               warmup_ns=WARMUP, measure_ns=MEASURE,
                               jobs=jobs, cache=cache), "udp-1024"))
    stamp("Fig 4b (TCP)")
    print(format_fig4(run_fig4("tcp", seed=1, warmup_ns=WARMUP, measure_ns=MEASURE,
                               jobs=jobs, cache=cache), "tcp"))

    stamp("Fig 5")
    print(format_fig5(run_fig5(seed=1, warmup_ns=WARMUP, measure_ns=MEASURE,
                               jobs=jobs, cache=cache)))

    stamp("Fig 6a (send)")
    send = run_fig6("send", seed=3, warmup_ns=300 * MS, measure_ns=600 * MS,
                    jobs=jobs, cache=cache)
    print(format_fig6(send, "send"))
    stamp("Fig 6b (receive)")
    recv = run_fig6("receive", seed=3, warmup_ns=300 * MS, measure_ns=600 * MS,
                    jobs=jobs, cache=cache)
    print(format_fig6(recv, "receive"))

    stamp("Fig 7")
    print(format_fig7(run_fig7(seed=3, duration_ns=int(1.5 * SEC), jobs=jobs, cache=cache)))

    stamp("Fig 8a (memcached)")
    print(format_fig8(run_fig8("memcached", seed=3, warmup_ns=300 * MS, measure_ns=600 * MS,
                               jobs=jobs, cache=cache), "memcached"))
    stamp("Fig 8b (apache)")
    print(format_fig8(run_fig8("apache", seed=3, warmup_ns=300 * MS, measure_ns=600 * MS,
                               jobs=jobs, cache=cache), "apache"))

    stamp("Fig 9")
    fig9 = run_fig9(seed=3, duration_ns=2 * SEC, configs=("Baseline", "PI", "PI+H", "PI+H+R"),
                    jobs=jobs, cache=cache)
    print(format_fig9(fig9))
    for cfg in ("Baseline", "PI", "PI+H", "PI+H+R"):
        print(f"knee[{cfg}] = {find_knee(fig9, cfg)}/s")

    stamp("SR-IOV (Section VII)")
    print(format_sriov(run_sriov(seed=3, warmup_ns=300 * MS, measure_ns=600 * MS,
                                 jobs=jobs, cache=cache)))

    stamp("Ablation: redirection policies")
    print(format_redirect_ablation(run_redirect_policy_ablation(
        seed=3, duration_ns=int(1.5 * SEC), jobs=jobs, cache=cache)))

    stamp("Ablation: vIC coalescing vs ES2")
    print(format_coalescing(run_coalescing(seed=5, warmup_ns=WARMUP, measure_ns=MEASURE,
                                           jobs=jobs, cache=cache)))

    stamp("Scheduler policy zoo x redirection x adaptive allocation")
    print(format_sched_sweep(run_sched_sweep(seed=3, duration_ns=int(0.8 * SEC),
                                             jobs=jobs, cache=cache)))

    stamp(f"done in {time.monotonic() - t0:.1f}s")


if __name__ == "__main__":
    main()
