"""Benchmark: the vIC coalescing trade-off vs ES2 (Section II-C, measured)."""

from __future__ import annotations

from benchmarks.conftest import SCALE, run_once
from repro.experiments.coalescing import format_coalescing, run_coalescing
from repro.units import SEC


def test_coalescing_tradeoff(benchmark, warmup_ns, measure_ns):
    results = run_once(
        benchmark,
        lambda: run_coalescing(seed=5, warmup_ns=warmup_ns, measure_ns=measure_ns,
                               ping_duration_ns=int(0.7 * SEC * SCALE)),
    )
    print()
    print(format_coalescing(results))
    base = results["Baseline"]
    vic = results["Baseline+vIC"]
    es2 = results["ES2"]
    # Coalescing does cut interrupt exits dramatically...
    assert vic.interrupt_exit_rate < base.interrupt_exit_rate / 5
    assert vic.tig > base.tig
    # ...but impedes latency (the paper's criticism of moderation).
    assert vic.ping_mean_ms > 2 * base.ping_mean_ms
    # ES2 gets both: zero interrupt exits and near-baseline latency.
    assert es2.interrupt_exit_rate == 0
    assert es2.ping_mean_ms < vic.ping_mean_ms
    assert es2.tig >= vic.tig
