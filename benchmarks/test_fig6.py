"""Benchmark: Fig. 6 — multiplexed netperf TCP throughput by packet size."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig6 import format_fig6, run_fig6

#: reduced size grid keeps the multiplexed sweep tractable; the full grid
#: (256/512/1024/1448) is available through run_fig6 directly.
BENCH_SIZES = (512, 1448)


def test_fig6a_tcp_send_throughput(benchmark, warmup_ns, measure_ns):
    results = run_once(
        benchmark,
        lambda: run_fig6("send", packet_sizes=BENCH_SIZES, seed=3,
                         warmup_ns=warmup_ns, measure_ns=measure_ns),
    )
    print()
    print(format_fig6(results, "send"))
    for size in BENCH_SIZES:
        base = results[("Baseline", size)]
        es2 = results[("PI+H+R", size)]
        pih = results[("PI+H", size)]
        # Paper: hybrid handling brings the major send-side gain; full ES2
        # approaches 2x baseline (we require >1.3x).
        assert pih > base * 1.05
        assert es2 > base * 1.30
    # Throughput grows with packet size for every config.
    for name in ("Baseline", "PI+H+R"):
        assert results[(name, 1448)] > results[(name, 512)]


def test_fig6b_tcp_receive_throughput(benchmark, warmup_ns, measure_ns):
    results = run_once(
        benchmark,
        lambda: run_fig6("receive", packet_sizes=BENCH_SIZES, seed=3,
                         warmup_ns=warmup_ns, measure_ns=measure_ns),
    )
    print()
    print(format_fig6(results, "receive"))
    for size in BENCH_SIZES:
        base = results[("Baseline", size)]
        es2 = results[("PI+H+R", size)]
        assert es2 > base * 1.15
    # Paper: redirection brings a significant receive gain over PI+H.
    # Individual cells are noisy at short measurement windows, so the
    # claim is asserted on the aggregate across packet sizes (the full-
    # length run in EXPERIMENTS.md shows +18-23% per size).
    es2_total = sum(results[("PI+H+R", s)] for s in BENCH_SIZES)
    pih_total = sum(results[("PI+H", s)] for s in BENCH_SIZES)
    assert es2_total > pih_total * 1.03
