"""Benchmark: Fig. 4 — I/O-instruction exit reduction vs quota (UDP & TCP)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig4 import format_fig4, run_fig4


def test_fig4a_udp_quota_sweep(benchmark, warmup_ns, measure_ns):
    points = run_once(
        benchmark,
        lambda: run_fig4("udp", quotas=(64, 32, 16, 8, 4), seed=1,
                         warmup_ns=warmup_ns, measure_ns=measure_ns),
    )
    print()
    print(format_fig4(points, "udp"))
    by_quota = {p.quota: p for p in points}
    baseline = by_quota[None]
    # Paper: baseline UDP I/O exits are on the order of 100k/s.
    assert baseline.io_exit_rate > 40_000
    # Monotone (weakly) decline with shrinking quota.
    rates = [by_quota[q].io_exit_rate for q in (64, 32, 16, 8)]
    for hi, lo in zip(rates, rates[1:]):
        assert lo <= hi * 1.10
    # Paper: quota 8 makes UDP I/O exits negligible (<0.1k/s scale).
    assert by_quota[8].io_exit_rate < 2_000
    assert by_quota[8].io_exit_rate < baseline.io_exit_rate / 20


def test_fig4b_tcp_quota_sweep(benchmark, warmup_ns, measure_ns):
    points = run_once(
        benchmark,
        lambda: run_fig4("tcp", quotas=(64, 32, 16, 8, 4, 2), seed=1,
                         warmup_ns=warmup_ns, measure_ns=measure_ns),
    )
    print()
    print(format_fig4(points, "tcp"))
    by_quota = {p.quota: p for p in points}
    baseline = by_quota[None]
    assert baseline.io_exit_rate > 30_000
    # Paper: quota 4 keeps TCP I/O exits under 10k/s.
    assert by_quota[4].io_exit_rate < 10_000
    # Paper: quota 2 and 4 achieve similar results.
    assert abs(by_quota[2].io_exit_rate - by_quota[4].io_exit_rate) < 10_000
    # Very small quotas pay switching overhead in throughput (Section V-A).
    assert by_quota[2].throughput_gbps < by_quota[8].throughput_gbps
