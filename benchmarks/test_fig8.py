"""Benchmark: Fig. 8 — Memcached and Apache throughput."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig8 import format_fig8, run_fig8


def test_fig8a_memcached(benchmark, warmup_ns, measure_ns):
    results = run_once(
        benchmark,
        lambda: run_fig8("memcached", seed=3, warmup_ns=warmup_ns, measure_ns=measure_ns),
    )
    print()
    print(format_fig8(results, "memcached"))
    base = results["Baseline"]
    # Paper ordering: Baseline < PI < PI+H < PI+H+R (1.8x total).
    assert results["PI"] > base * 1.02
    assert results["PI+H"] >= results["PI"] * 0.98
    assert results["PI+H+R"] > results["PI+H"]
    assert results["PI+H+R"] > base * 1.2


def test_fig8b_apache(benchmark, warmup_ns, measure_ns):
    results = run_once(
        benchmark,
        lambda: run_fig8("apache", seed=3, warmup_ns=warmup_ns, measure_ns=measure_ns),
    )
    print()
    print(format_fig8(results, "apache"))
    base = results["Baseline"]
    # Paper: full ES2 ~2x baseline (we require >1.5x).
    assert results["PI+H+R"] > base * 1.5
    assert results["PI+H"] > base * 1.02
    assert results["PI+H+R"] > results["PI+H"]
