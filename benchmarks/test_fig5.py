"""Benchmark: Fig. 5 — exit-cause breakdown + TIG for stream workloads."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.fig5 import format_fig5, run_fig5


def test_fig5_exit_breakdown_and_tig(benchmark, warmup_ns, measure_ns):
    results = run_once(
        benchmark, lambda: run_fig5(seed=1, warmup_ns=warmup_ns, measure_ns=measure_ns)
    )
    print()
    print(format_fig5(results))

    # --- Fig. 5a: sending ---------------------------------------------------
    tcp_base = results[("tcp", "send", "Baseline")]
    tcp_pih = results[("tcp", "send", "PI+H")]
    udp_base = results[("udp", "send", "Baseline")]
    udp_pih = results[("udp", "send", "PI+H")]

    # Baseline TCP send: interrupt exits present, total on the 100k/s order.
    assert tcp_base.exit_rates.interrupt_delivery > 10_000
    assert tcp_base.total_exit_rate > 80_000
    # PI+H: remaining exits under 10k/s with TIG above 96% (paper: 97.5%).
    assert tcp_pih.total_exit_rate < 10_000
    assert tcp_pih.tig > 0.96
    # UDP send reaches TIG above 99% (paper: 99.7%) with <1k exits/s.
    assert udp_pih.total_exit_rate < 2_000
    assert udp_pih.tig > 0.99
    assert udp_pih.tig > udp_base.tig

    # --- Fig. 5b: receiving -------------------------------------------------
    tcp_rx_base = results[("tcp", "receive", "Baseline")]
    tcp_rx_pi = results[("tcp", "receive", "PI")]
    udp_rx_pi = results[("udp", "receive", "PI")]
    udp_rx_base = results[("udp", "receive", "Baseline")]

    # PI raises receive TIG (paper: 91.1% -> 94.8%).
    assert tcp_rx_pi.tig > tcp_rx_base.tig
    # PI eliminates the interrupt exits of the receive path.
    assert tcp_rx_pi.exit_rates.interrupt_delivery == 0
    assert udp_rx_pi.exit_rates.interrupt_delivery == 0
    # Baseline UDP receive is dominated by interrupt delivery/completion.
    assert udp_rx_base.exit_rates.interrupt_delivery > 5_000
    # UDP receive has no I/O-instruction exits (unidirectional traffic).
    assert udp_rx_base.exit_rates.io_request < 500
    # PI and PI+H keep UDP-receive TIG above 99% (paper: >99%).
    assert udp_rx_pi.tig > 0.99
