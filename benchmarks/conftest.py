"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure of the paper and prints the
same rows/series the paper reports.  Simulated durations are scaled down
from the paper's minutes-long runs to keep the suite fast; set
``REPRO_BENCH_SCALE`` (a float, default 1.0) to lengthen every window for
higher-fidelity numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.units import MS

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(ns: int) -> int:
    return int(ns * SCALE)


@pytest.fixture
def warmup_ns() -> int:
    return scaled(150 * MS)


@pytest.fixture
def measure_ns() -> int:
    return scaled(400 * MS)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Simulation results are deterministic, so repeating rounds only wastes
    wall-clock; the interesting output is the printed table, the timing is
    incidental.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
