"""Benchmark: ablations of ES2 design choices (beyond the paper's figures)."""

from __future__ import annotations

from benchmarks.conftest import SCALE, run_once
from repro.experiments.ablations import format_redirect_ablation, run_redirect_policy_ablation
from repro.units import MS, SEC


def test_redirect_policy_ablation(benchmark):
    duration = int(1.2 * SEC * SCALE)
    results = run_once(
        benchmark,
        lambda: run_redirect_policy_ablation(seed=3, duration_ns=duration, interval_ns=10 * MS),
    )
    print()
    print(format_redirect_ablation(results))
    no_redirect = results["PI (no redirect)"]
    full = results["ES2 (full)"]
    no_pred = results["ES2 no-prediction"]
    # Redirection is what produces the latency win.
    assert full.mean_ms() < no_redirect.mean_ms() / 2
    # Offline prediction matters when no vCPU is online: disabling it
    # falls back to the affinity target and loses part of the win.
    assert no_pred.mean_ms() >= full.mean_ms() * 0.9
    # R works without H too (latency is an interrupt-path property).
    assert results["PI+R"].mean_ms() < no_redirect.mean_ms() / 2
