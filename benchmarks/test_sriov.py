"""Benchmark: Section VII — ES2 applied to SR-IOV (beyond the paper's eval)."""

from __future__ import annotations

from benchmarks.conftest import SCALE, run_once
from repro.experiments.sriov import format_sriov, run_sriov
from repro.units import SEC


def test_sriov_event_path(benchmark, warmup_ns, measure_ns):
    results = run_once(
        benchmark,
        lambda: run_sriov(seed=3, warmup_ns=warmup_ns, measure_ns=measure_ns,
                          ping_duration_ns=int(1.0 * SEC * SCALE)),
    )
    print()
    print(format_sriov(results))
    # Device assignment removes I/O-request exits by construction.
    for r in results.values():
        assert r.io_exit_rate == 0
    # VT-d PI removes the interrupt-related exits the assigned baseline pays.
    assert results["Assigned"].interrupt_exit_rate > 1_000
    assert results["VT-d PI"].interrupt_exit_rate == 0
    # Redirection is still needed for responsiveness (Section VII's claim).
    assert (
        results["VT-d PI+R"].ping.mean_ms() < results["VT-d PI"].ping.mean_ms() / 2
    )
    # And TIG ordering follows.
    assert results["VT-d PI"].tig >= results["Assigned"].tig