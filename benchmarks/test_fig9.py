"""Benchmark: Fig. 9 — Httperf average connection time vs request rate."""

from __future__ import annotations

from benchmarks.conftest import SCALE, run_once
from repro.experiments.fig9 import find_knee, format_fig9, run_fig9
from repro.units import SEC

BENCH_RATES = (800, 1400, 1800, 2200, 2600, 3000)
BENCH_CONFIGS = ("Baseline", "PI+H+R")


def test_fig9_connection_time_knee(benchmark):
    duration = int(1.6 * SEC * SCALE)
    results = run_once(
        benchmark,
        lambda: run_fig9(rates=BENCH_RATES, configs=BENCH_CONFIGS, seed=3,
                         duration_ns=duration),
    )
    print()
    print(format_fig9(results))
    base_knee = find_knee(results, "Baseline")
    es2_knee = find_knee(results, "PI+H+R")
    print(f"knees: Baseline={base_knee}/s  ES2={es2_knee}/s")
    # Paper: baseline grows rapidly past ~1800/s; ES2 stays low until ~2600/s.
    assert base_knee <= 2200
    assert es2_knee >= 2600
    assert es2_knee > base_knee
    # Below the baseline knee, ES2's connection time is much lower.
    assert results[("PI+H+R", 800)] < results[("Baseline", 800)] / 2
    # Past the baseline knee, baseline connection times explode.
    assert results[("Baseline", 2600)] > 10 * results[("Baseline", 800)]
