"""Benchmark: Table I — VM-exit cause breakdown, TCP sending, Baseline vs PI."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.table1 import format_table1, run_table1


def test_table1_exit_breakdown(benchmark, warmup_ns, measure_ns):
    results = run_once(
        benchmark, lambda: run_table1(seed=1, warmup_ns=warmup_ns, measure_ns=measure_ns)
    )
    print()
    print(format_table1(results))
    base = results["Baseline"].exit_rates
    pi = results["PI"].exit_rates

    # Paper: interrupt delivery + completion are ~45% of baseline exits.
    pct = base.percentages()
    interrupt_share = pct["interrupt-delivery"] + pct["interrupt-completion"]
    assert interrupt_share > 25.0
    # Paper: I/O requests are the largest single cause.
    assert pct["io-request"] > 35.0
    # PI eliminates the interrupt-related exits entirely...
    assert pi.interrupt_delivery == 0
    assert pi.interrupt_completion == 0
    # ...and raises the I/O-request rate (paper: +20%).
    assert pi.io_request > base.io_request * 1.05
    # Others shrink under PI (paper: 2112 -> 964).
    assert pi.others < base.others
