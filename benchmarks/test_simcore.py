"""Benchmark: raw simulator throughput (harness performance, not a paper
figure).

These are the only benchmarks where the *timing* is the result: they track
how many simulated events and how much simulated time the DES core chews
per wall-clock second, so performance regressions in the hot paths (event
heap, dispatch engine, virtio pipeline) are visible.
"""

from __future__ import annotations

from repro.core.configs import paper_config
from repro.experiments.testbed import single_vcpu_testbed
from repro.sim.simulator import Simulator
from repro.units import MS
from repro.workloads.netperf import NetperfUdpSend


def test_event_heap_throughput(benchmark):
    """Schedule+fire one million trivial events."""

    def run():
        sim = Simulator()
        for i in range(100_000):
            sim.schedule(i, _noop)
        sim.run_until_empty()
        return sim.events_fired

    fired = benchmark(run)
    assert fired == 100_000


def _noop():
    pass


def test_full_stack_simulated_time_rate(benchmark):
    """Simulate 100 ms of a busy single-VM testbed (the Fig. 4 workload)."""

    def run():
        tb = single_vcpu_testbed(paper_config("PI+H", quota=8), seed=1)
        NetperfUdpSend(tb, tb.tested, payload_size=256)
        tb.run_for(100 * MS)
        return tb.sim.events_fired

    fired = benchmark.pedantic(run, rounds=3, iterations=1)
    assert fired > 10_000
