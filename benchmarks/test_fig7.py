"""Benchmark: Fig. 7 — ping RTT under multiplexed vCPUs."""

from __future__ import annotations

from benchmarks.conftest import SCALE, run_once
from repro.experiments.fig7 import format_fig7, run_fig7
from repro.units import MS, SEC


def test_fig7_ping_rtt(benchmark):
    duration = int(1.2 * SEC * SCALE)
    results = run_once(
        benchmark, lambda: run_fig7(seed=3, duration_ns=duration, interval_ns=10 * MS)
    )
    print()
    print(format_fig7(results))
    base = results["Baseline"]
    es2 = results["PI+H+R"]
    assert len(base) > 50 and len(es2) > 50
    # Paper: baseline RTT varies widely with ~18ms peaks.
    assert base.max_ms() > 10.0
    assert base.mean_ms() > 3.0
    # Paper: ES2 keeps RTT at a very low level (<0.5ms typical).
    assert es2.percentile_ms(50) < 0.5
    assert es2.mean_ms() < base.mean_ms() / 3
    assert es2.max_ms() < base.max_ms()
