PYTHON ?= python

.PHONY: test lint bench-smoke bench determinism ci experiments

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Prefer ruff (configured in pyproject.toml); fall back to the
# dependency-free subset linter when ruff is not installed.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests scripts benchmarks examples; \
	else \
		echo "ruff not found; using scripts/lint.py fallback"; \
		$(PYTHON) scripts/lint.py src tests scripts benchmarks examples; \
	fi

# Reduced end-to-end sweep for CI (stays within a one-minute budget).
# The bench_smoke marker (pyproject.toml) is the single source of truth
# for what this runs — no file paths here.
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest -q -m bench_smoke

# Machine-readable benchmark artifact: BENCH_<rev>.json.
bench:
	PYTHONPATH=src $(PYTHON) -m repro bench

# Fixed-seed serial-vs-parallel sweep equivalence (exit 1 on divergence).
determinism:
	$(PYTHON) scripts/determinism_guard.py

ci: lint test bench-smoke determinism

# The full paper reproduction (long; parallel + cached by default).
experiments:
	PYTHONPATH=src $(PYTHON) scripts/run_all_experiments.py
