PYTHON ?= python

.PHONY: test lint bench-smoke sched-sweep rack-smoke bench bench-compare profile trace-smoke dashboard determinism ci experiments flow flow-smoke flow-report flow-dashboard

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Prefer ruff (configured in pyproject.toml); fall back to the
# dependency-free subset linter when ruff is not installed.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests scripts benchmarks examples; \
	else \
		echo "ruff not found; using scripts/lint.py fallback"; \
		$(PYTHON) scripts/lint.py src tests scripts benchmarks examples; \
	fi

# Reduced end-to-end sweep for CI (stays within a one-minute budget).
# The bench_smoke marker (pyproject.toml) is the single source of truth
# for what this runs — no file paths here.
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest -q -m bench_smoke

# Reduced scheduler-policy-zoo sweep (marker-selected, see pyproject.toml).
# Set REPRO_SCHED_SWEEP_ARTIFACT=<path> to export the JSON summary.
sched-sweep:
	PYTHONPATH=src $(PYTHON) -m pytest -q -m sched_sweep

# Reduced sharded-rack scenario at 1 and 4 shards (marker-selected):
# byte-identity + window-barrier protocol smoke, the CI `rack` job.
rack-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest -q -m rack_smoke

# Machine-readable benchmark artifact: BENCH_<rev>.json.
bench:
	PYTHONPATH=src $(PYTHON) -m repro bench

# Re-run the bench and diff it against the checked-in baseline (exit 1 on
# a >25% throughput / >60% p99 regression — the CI gate thresholds).
bench-compare:
	REPRO_REV=current PYTHONPATH=src $(PYTHON) -m repro bench --no-profile
	$(PYTHON) scripts/bench_compare.py BENCH_baseline.json BENCH_current.json \
		--max-throughput-drop 25 --max-p99-increase 60

# Where the run loop spends its time: the bench with the per-event-type
# profile printed (heaviest wall time first).  Start perf work here.
profile:
	PYTHONPATH=src $(PYTHON) -m repro bench --profile-top 15

# Self-contained HTML dashboard (windowed telemetry + path report) from a
# fresh smoke bench run.  Render an existing report instead with
# `python -m repro dashboard --input BENCH_<rev>.json`.
dashboard:
	PYTHONPATH=src $(PYTHON) -m repro dashboard --output dashboard.html

# One spans-enabled ping run: stage attribution + Perfetto/JSONL exports.
trace-smoke:
	PYTHONPATH=src $(PYTHON) -m repro trace ping --duration-ms 250 \
		--perfetto path-trace-ping.perfetto.json --jsonl path-trace-ping.jsonl

# Fixed-seed serial-vs-parallel sweep equivalence (exit 1 on divergence).
determinism:
	$(PYTHON) scripts/determinism_guard.py

# Mirror of the GitHub workflow job list (.github/workflows/ci.yml) so
# local and hosted CI agree:
#   lint -> lint, test -> test (the sched-conformance matrix re-runs a
#   subset of it), bench-smoke -> bench-smoke, sched-sweep -> sched-sweep,
#   rack-smoke -> rack, determinism -> determinism, trace-smoke +
#   bench-compare -> path-trace, flow-smoke -> experiments-dag.
ci: lint test bench-smoke sched-sweep rack-smoke determinism trace-smoke bench-compare flow-smoke

# The full paper reproduction (long; resumable DAG, parallel + cached).
experiments:
	PYTHONPATH=src $(PYTHON) scripts/run_all_experiments.py

# The experiment DAG, full parameters (same outputs as `make experiments`).
flow:
	PYTHONPATH=src $(PYTHON) -m repro flow run --print-report

# Reduced DAG twice: the second run must resolve every task from cache,
# and `flow diff` between the cold snapshot and the warm state must show
# zero recomputed tasks / zero digest changes — the same resume +
# incremental-re-run proof the experiments-dag CI job runs.
flow-smoke:
	PYTHONPATH=src $(PYTHON) -m repro flow run --mode reduced --state-dir .flow
	cp .flow/flow-state.json .flow-state-cold.json
	PYTHONPATH=src $(PYTHON) -m repro flow run --mode reduced --state-dir .flow --assert-cached
	PYTHONPATH=src $(PYTHON) -m repro flow diff .flow-state-cold.json .flow --assert-no-changes
	PYTHONPATH=src $(PYTHON) -m repro flow report --state-dir .flow

# Critical-path / resource analysis of the latest flow run in .flow.
flow-report:
	PYTHONPATH=src $(PYTHON) -m repro flow report --state-dir .flow

# Self-contained Gantt dashboard (critical path, cache map, queue waits)
# of the latest flow run in .flow.
flow-dashboard:
	PYTHONPATH=src $(PYTHON) -m repro flow dashboard --state-dir .flow --output flow-gantt.html
