PYTHON ?= python

.PHONY: test bench-smoke experiments

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Reduced end-to-end sweep for CI (stays within a one-minute budget).
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest -q -m bench_smoke tests/test_bench_smoke.py

# The full paper reproduction (long; parallel + cached by default).
experiments:
	PYTHONPATH=src $(PYTHON) scripts/run_all_experiments.py
